"""Property-based tests for the extension modules (forest, segmented,
early reconnect, mutation utilities)."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.serial import serial_list_scan
from repro.core.early_reconnect import early_reconnect_list_scan
from repro.core.forest import forest_list_scan, serial_forest_scan
from repro.core.operators import SUM
from repro.core.segmented import segmented_list_scan
from repro.lists.generate import INDEX_DTYPE, from_order, list_order
from repro.lists.mutate import concatenate, reverse, splice_out, split_after
from repro.lists.validate import validate_list_strict

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


@st.composite
def forests(draw, max_lists=6, max_total=300):
    n_lists = draw(st.integers(1, max_lists))
    sizes = draw(
        st.lists(
            st.integers(1, max_total // max_lists),
            min_size=n_lists,
            max_size=n_lists,
        )
    )
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    total = sum(sizes)
    perm = rng.permutation(total)
    nxt = np.empty(total, dtype=INDEX_DTYPE)
    heads = []
    pos = 0
    for s in sizes:
        seg = perm[pos : pos + s]
        nxt[seg[:-1]] = seg[1:]
        nxt[seg[-1]] = seg[-1]
        heads.append(int(seg[0]))
        pos += s
    values = rng.integers(-20, 20, total)
    return nxt, np.asarray(heads, dtype=INDEX_DTYPE), values


@st.composite
def valued_lists(draw, max_n=300):
    n = draw(st.integers(1, max_n))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    return from_order(rng.permutation(n), rng.integers(-20, 20, n))


class TestForestProperties:
    @settings(max_examples=50, **COMMON)
    @given(data=forests(), seed=st.integers(0, 999))
    def test_forest_equals_serial(self, data, seed):
        nxt, heads, values = data
        ref = np.empty_like(values)
        serial_forest_scan(nxt, values, heads, SUM, None, ref)
        got = forest_list_scan(
            nxt, values, heads, SUM, serial_cutoff=4, rng=seed
        )
        assert np.array_equal(got, ref)

    @settings(max_examples=50, **COMMON)
    @given(data=forests(), seed=st.integers(0, 999))
    def test_forest_restores(self, data, seed):
        nxt, heads, values = data
        bn, bv = nxt.copy(), values.copy()
        forest_list_scan(nxt, values, heads, SUM, serial_cutoff=4, rng=seed)
        assert np.array_equal(nxt, bn)
        assert np.array_equal(values, bv)

    @settings(max_examples=30, **COMMON)
    @given(data=forests(), seed=st.integers(0, 999))
    def test_carries_shift_results(self, data, seed):
        """Adding carry c to list k shifts exactly its nodes by c."""
        nxt, heads, values = data
        rng = np.random.default_rng(seed)
        carries = rng.integers(-50, 50, heads.size)
        base, ids = forest_list_scan(
            nxt, values, heads, SUM, serial_cutoff=4, rng=seed,
            return_list_ids=True,
        )
        seeded = forest_list_scan(
            nxt, values, heads, SUM, carries=carries,
            serial_cutoff=4, rng=seed,
        )
        assert np.array_equal(seeded, base + carries[ids])


class TestEarlyReconnectProperties:
    @settings(max_examples=40, **COMMON)
    @given(
        lst=valued_lists(),
        seed=st.integers(0, 999),
        switch=st.integers(0, 64),
    )
    def test_equals_serial(self, lst, seed, switch):
        got = early_reconnect_list_scan(lst, switch_count=switch, rng=seed)
        assert np.array_equal(got, serial_list_scan(lst))

    @settings(max_examples=40, **COMMON)
    @given(lst=valued_lists(), seed=st.integers(0, 999))
    def test_restores(self, lst, seed):
        bn, bv = lst.next.copy(), lst.values.copy()
        early_reconnect_list_scan(lst, switch_count=4, rng=seed)
        assert np.array_equal(lst.next, bn)
        assert np.array_equal(lst.values, bv)


class TestSegmentedProperties:
    @settings(max_examples=40, **COMMON)
    @given(lst=valued_lists(max_n=200), seed=st.integers(0, 999))
    def test_segment_heads_get_identity(self, lst, seed):
        rng = np.random.default_rng(seed)
        k = int(rng.integers(0, max(1, lst.n // 3)))
        heads = rng.choice(lst.n, size=k, replace=False) if k else np.empty(
            0, dtype=np.int64
        )
        out = segmented_list_scan(lst, heads, SUM, algorithm="serial")
        assert out[lst.head] == 0
        for h in heads:
            assert out[h] == 0

    @settings(max_examples=40, **COMMON)
    @given(lst=valued_lists(max_n=200), seed=st.integers(0, 999))
    def test_telescoping_within_segments(self, lst, seed):
        """scan[next[v]] − scan[v] = value[v] unless next[v] starts a
        segment."""
        rng = np.random.default_rng(seed)
        k = int(rng.integers(0, max(1, lst.n // 4)))
        heads = (
            rng.choice(lst.n, size=k, replace=False)
            if k
            else np.empty(0, dtype=np.int64)
        )
        out = segmented_list_scan(lst, heads, SUM, algorithm="serial")
        head_set = set(int(h) for h in heads) | {lst.head}
        idx = np.arange(lst.n)
        proper = lst.next != idx
        for v in idx[proper]:
            succ = int(lst.next[v])
            if succ in head_set:
                assert out[succ] == 0
            else:
                assert out[succ] - out[v] == lst.values[v]


class TestMutateProperties:
    @settings(max_examples=40, **COMMON)
    @given(lst=valued_lists(max_n=150), seed=st.integers(0, 999))
    def test_split_concat_roundtrip(self, lst, seed):
        rng = np.random.default_rng(seed)
        k = int(rng.integers(0, 5))
        cuts = rng.choice(lst.n, size=min(k, lst.n), replace=False)
        pieces = split_after(lst, cuts)
        combined, _ = concatenate([p for p, _ in pieces])
        validate_list_strict(combined)
        ids = np.concatenate([ids for _, ids in pieces])
        # traversal of the concatenation visits the original values in
        # the original order
        vals_roundtrip = combined.values[list_order(combined)]
        vals_original = lst.values[list_order(lst)]
        assert np.array_equal(vals_roundtrip, vals_original)
        assert np.array_equal(ids, list_order(lst))

    @settings(max_examples=40, **COMMON)
    @given(lst=valued_lists(max_n=150))
    def test_reverse_involution(self, lst):
        assert np.array_equal(
            list_order(reverse(reverse(lst))), list_order(lst)
        )

    @settings(max_examples=40, **COMMON)
    @given(lst=valued_lists(max_n=150), seed=st.integers(0, 999))
    def test_splice_out_partition(self, lst, seed):
        if lst.n < 2:
            return
        rng = np.random.default_rng(seed)
        order = list_order(lst)
        a = int(rng.integers(0, lst.n - 1))
        b = int(rng.integers(a, lst.n - 1)) if a < lst.n - 1 else a
        if b - a + 1 >= lst.n:
            return
        (rem, rem_ids), (seg, seg_ids) = splice_out(
            lst, int(order[a]), int(order[b])
        )
        validate_list_strict(rem)
        validate_list_strict(seg)
        assert rem.n + seg.n == lst.n
        assert set(rem_ids) | set(seg_ids) == set(range(lst.n))
