"""Unit tests for the simulated vector processor (VectorVM)."""

import numpy as np
import pytest

from repro.machine.config import CRAY_C90, DECSTATION_5000
from repro.machine.vm import VectorVM


@pytest.fixture
def vm():
    return VectorVM(CRAY_C90, bank_conflicts=False)


class TestLedger:
    def test_starts_empty(self, vm):
        assert vm.cycles == 0.0

    def test_reset(self, vm):
        vm.load(np.zeros(10))
        assert vm.cycles > 0
        vm.reset()
        assert vm.cycles == 0.0

    def test_cycles_additive(self, vm):
        vm.load(np.zeros(10))
        a = vm.cycles
        vm.load(np.zeros(10))
        assert vm.cycles == pytest.approx(2 * a)

    def test_time_ns(self, vm):
        vm.charge_cycles(100.0)
        assert vm.time_ns == pytest.approx(100 * CRAY_C90.clock_ns)

    def test_regions_categorize(self, vm):
        with vm.region("alpha"):
            vm.load(np.zeros(10))
        with vm.region("beta"):
            vm.load(np.zeros(20))
        assert set(vm.ledger.by_category) == {"alpha", "beta"}
        assert vm.ledger.by_category["beta"] > vm.ledger.by_category["alpha"]

    def test_regions_nest_and_restore(self, vm):
        with vm.region("outer"):
            with vm.region("inner"):
                vm.load(np.zeros(5))
            vm.load(np.zeros(5))
        assert "outer" in vm.ledger.by_category
        assert "inner" in vm.ledger.by_category

    def test_op_counts(self, vm):
        with vm.region("r"):
            vm.load(np.zeros(4))
            vm.load(np.zeros(4))
        assert vm.ledger.op_counts["r"] == 2


class TestOperationSemantics:
    def test_gather_returns_values(self, vm):
        arr = np.array([10, 20, 30])
        idx = np.array([2, 0])
        assert np.array_equal(vm.gather(arr, idx), [30, 10])

    def test_scatter_writes(self, vm):
        arr = np.zeros(4, dtype=np.int64)
        vm.scatter(arr, np.array([1, 3]), np.array([7, 9]))
        assert np.array_equal(arr, [0, 7, 0, 9])

    def test_store_writes(self, vm):
        dst = np.zeros(3)
        vm.store(dst, np.ones(3))
        assert np.all(dst == 1)

    def test_ew_applies_function(self, vm):
        out = vm.ew(np.add, np.array([1, 2]), np.array([3, 4]))
        assert np.array_equal(out, [4, 6])

    def test_compress_packs(self, vm):
        mask = np.array([True, False, True])
        a, b = vm.compress(mask, np.array([1, 2, 3]), np.array([4, 5, 6]))
        assert np.array_equal(a, [1, 3])
        assert np.array_equal(b, [4, 6])

    def test_compress_single_array(self, vm):
        out = vm.compress(np.array([False, True]), np.array([8, 9]))
        assert np.array_equal(out, [9])

    def test_iota(self, vm):
        assert np.array_equal(vm.iota(4), [0, 1, 2, 3])


class TestCostModel:
    def test_gather_costs_more_than_load(self, vm):
        arr = np.zeros(1000)
        idx = np.arange(1000)
        vm.gather(arr, idx)
        g = vm.cycles
        vm.reset()
        vm.load(arr)
        assert g > vm.cycles

    def test_chained_waives_overheads(self, vm):
        vm.load(np.zeros(128))
        full = vm.cycles
        vm.reset()
        vm.load(np.zeros(128), chained=True)
        chained = vm.cycles
        assert chained == pytest.approx(128 * CRAY_C90.load_rate)
        assert full == pytest.approx(
            chained + CRAY_C90.strip_startup + CRAY_C90.call_const
        )

    def test_strip_mining(self, vm):
        vm.load(np.zeros(128))
        one_strip = vm.cycles
        vm.reset()
        vm.load(np.zeros(129))
        two_strips = vm.cycles
        assert two_strips - one_strip == pytest.approx(
            CRAY_C90.load_rate + CRAY_C90.strip_startup
        )

    def test_scalar_traverse(self, vm):
        vm.scalar_traverse(100)
        assert vm.cycles == pytest.approx(
            100 * CRAY_C90.scalar_chase + CRAY_C90.scalar_call_const
        )

    def test_sync_and_task_costs(self, vm):
        vm.sync()
        vm.task_start()
        assert vm.ledger.by_category["sync"] == CRAY_C90.sync_cycles
        assert vm.ledger.by_category["tasking"] == CRAY_C90.task_start_cycles


class TestBankConflicts:
    def test_hotspot_charged(self):
        vm = VectorVM(CRAY_C90, bank_conflicts=True)
        hot = np.zeros(512, dtype=np.int64)
        vm.gather(np.zeros(1), hot)
        with_conflicts = vm.cycles
        vm2 = VectorVM(CRAY_C90, bank_conflicts=False)
        vm2.gather(np.zeros(1), hot)
        assert with_conflicts > vm2.cycles

    def test_sampling_scales_charges(self, rng):
        hot = np.zeros(256, dtype=np.int64)
        vm_full = VectorVM(CRAY_C90, bank_conflicts=True, conflict_sample_every=1)
        vm_samp = VectorVM(CRAY_C90, bank_conflicts=True, conflict_sample_every=4)
        for _ in range(16):
            vm_full.gather(np.zeros(1), hot)
            vm_samp.gather(np.zeros(1), hot)
        assert vm_samp.cycles == pytest.approx(vm_full.cycles, rel=0.05)

    def test_rejects_bad_sampling(self):
        with pytest.raises(ValueError):
            VectorVM(CRAY_C90, conflict_sample_every=0)


class TestScalarMachine:
    def test_decstation_preset_usable(self):
        vm = VectorVM(DECSTATION_5000)
        vm.scalar_traverse(1000)
        ns_per_elem = vm.time_ns / 1000
        # the two-orders-of-magnitude anchor: ≈550 ns per element
        assert 400 < ns_per_elem < 700
