"""Unit tests for the runtime lock-order checker.

The checker must raise on the first acquisition that *could* deadlock
(an AB/BA order inversion), stay quiet on consistent orders and RLock
reentrancy, ignore failed try-acquires, and restore instrumented
modules exactly on exit.  The integration with the engine lives in
``tests/test_engine_concurrency.py``; this file exercises the
machinery directly.
"""

from __future__ import annotations

import threading
import types

import pytest

from repro.lint.lockorder import (
    CheckedLock,
    LockOrderError,
    LockOrderGraph,
    instrumented_locks,
)


def make_locks(*names):
    graph = LockOrderGraph()
    return graph, [CheckedLock(graph, name) for name in names]


# ---------------------------------------------------------------------------
# cycle detection
# ---------------------------------------------------------------------------


def test_consistent_order_is_silent():
    graph, (a, b, c) = make_locks("A", "B", "C")
    for _ in range(3):
        with a, b, c:
            pass
    assert graph.edge_count() == 3  # A->B, A->C, B->C
    graph.assert_acyclic()


def test_ab_ba_inversion_raises_at_acquire_time():
    graph, (a, b) = make_locks("A", "B")
    with a, b:
        pass
    with b, pytest.raises(LockOrderError) as excinfo:
        a.acquire()
    err = excinfo.value
    assert err.acquiring == "A"
    assert err.held == "B"
    assert "A" in str(err) and "B" in str(err)


def test_offending_edge_is_not_recorded():
    graph, (a, b) = make_locks("A", "B")
    with a, b:
        pass
    with b, pytest.raises(LockOrderError):
        a.acquire()
    # the caught violation must not poison the graph for teardown
    graph.assert_acyclic()
    assert graph.edges() == {"A": frozenset({"B"}), "B": frozenset()}


def test_failed_violation_leaves_lock_released():
    graph, (a, b) = make_locks("A", "B")
    with a, b:
        pass
    with b, pytest.raises(LockOrderError):
        a.acquire()
    # A was rolled back on the failed checked-acquire: still available
    assert a.acquire(blocking=False)
    a.release()


def test_three_lock_cycle_detected():
    graph, (a, b, c) = make_locks("A", "B", "C")
    with a, b:
        pass
    with b, c:
        pass
    with c, pytest.raises(LockOrderError) as excinfo:
        a.acquire()
    assert excinfo.value.cycle[0] == "A"


def test_rlock_reentrancy_is_not_a_cycle():
    graph = LockOrderGraph()
    r = CheckedLock(graph, "R", reentrant=True)
    with r, r:
        pass
    graph.assert_acyclic()
    assert graph.edges().get("R") == frozenset()


def test_failed_try_acquire_establishes_no_ordering():
    graph, (a, b) = make_locks("A", "B")
    with a, b:
        pass

    order_error = []

    def contender():
        # B is held by the main thread: this try-acquire fails and must
        # record nothing, so the later A-after-B check cannot fire here
        assert not b.acquire(blocking=False)

    with b:
        t = threading.Thread(target=contender)
        t.start()
        t.join()
    assert not order_error
    assert graph.acquisitions == 3  # a, b, and the outer b — not the failed try


def test_cross_thread_inversion_detected():
    graph, (a, b) = make_locks("A", "B")

    def thread_one():
        with a, b:
            pass

    t = threading.Thread(target=thread_one)
    t.start()
    t.join()

    failures = []

    def thread_two():
        try:
            with b, a:
                pass
        except LockOrderError as exc:
            failures.append(exc)

    t2 = threading.Thread(target=thread_two)
    t2.start()
    t2.join()
    assert len(failures) == 1


def test_held_stack_is_per_thread():
    graph, (a,) = make_locks("A")
    with a:
        seen = []
        t = threading.Thread(
            target=lambda: seen.append(graph.held_by_current_thread())
        )
        t.start()
        t.join()
        assert seen == [()]
        assert graph.held_by_current_thread() == ("A",)


def test_assert_acyclic_catches_a_hand_built_cycle():
    graph = LockOrderGraph()
    graph._edges = {"A": {"B"}, "B": {"A"}}
    with pytest.raises(LockOrderError):
        graph.assert_acyclic()


# ---------------------------------------------------------------------------
# CheckedLock protocol
# ---------------------------------------------------------------------------


def test_checked_lock_protocol():
    graph, (a,) = make_locks("A")
    assert not a.locked()
    with a:
        assert a.locked()
    assert not a.locked()
    assert "A" in repr(a)


def test_release_tolerates_out_of_order():
    graph, (a, b) = make_locks("A", "B")
    a.acquire()
    b.acquire()
    a.release()  # out-of-LIFO release: allowed, just unusual
    b.release()
    graph.assert_acyclic()


# ---------------------------------------------------------------------------
# module instrumentation
# ---------------------------------------------------------------------------


def _fake_engine_module():
    mod = types.ModuleType("fake_engine")
    mod.threading = threading
    exec(
        "def make():\n"
        "    return threading.Lock(), threading.RLock()\n",
        mod.__dict__,
    )
    return mod


def test_instrumented_locks_wraps_and_restores():
    mod = _fake_engine_module()
    original = mod.threading
    with instrumented_locks(mod) as graph:
        lock, rlock = mod.make()
        assert isinstance(lock, CheckedLock)
        assert isinstance(rlock, CheckedLock)
        assert lock.name.startswith("fake_engine.Lock#")
        assert rlock.name.startswith("fake_engine.RLock#")
        with lock, rlock:
            pass
    assert mod.threading is original
    assert graph.acquisitions == 2
    graph.assert_acyclic()


def test_instrumented_locks_restores_on_error():
    mod = _fake_engine_module()
    original = mod.threading
    with pytest.raises(RuntimeError, match="boom"), instrumented_locks(mod):
        raise RuntimeError("boom")
    assert mod.threading is original


def test_instrumented_locks_rejects_module_without_threading():
    mod = types.ModuleType("no_threading")
    with pytest.raises(ValueError, match="no_threading"), instrumented_locks(mod):
        pass


def test_proxy_delegates_everything_else():
    mod = _fake_engine_module()
    with instrumented_locks(mod):
        proxy = mod.threading
        assert proxy.current_thread is threading.current_thread
        cond = proxy.Condition()
        assert isinstance(cond, threading.Condition)


def test_shared_graph_across_modules():
    mod1 = _fake_engine_module()
    mod2 = _fake_engine_module()
    mod2.__name__ = "fake_engine_2"
    with instrumented_locks(mod1, mod2) as graph:
        (l1, _), (l2, _) = mod1.make(), mod2.make()
        with l1, l2:
            pass
    assert graph.edge_count() == 1
    graph.assert_acyclic()
