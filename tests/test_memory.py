"""Unit tests for the banked-memory conflict models."""

import numpy as np
import pytest

from repro.machine.config import CRAY_C90, CRAY_YMP
from repro.machine.memory import (
    conflict_cycles,
    estimate_conflict_cycles,
    exact_conflict_cycles,
)


class TestExactModel:
    def test_empty_stream(self):
        assert exact_conflict_cycles(np.empty(0, dtype=np.int64), CRAY_C90) == 0.0

    def test_distinct_banks_no_stalls(self):
        # one access per bank, round-robin: never revisits a busy bank
        addrs = np.arange(CRAY_C90.n_banks, dtype=np.int64)
        assert exact_conflict_cycles(addrs, CRAY_C90) == 0.0

    def test_same_bank_serializes(self):
        # every access hits bank 0: each waits bank_busy − issue_rate
        k = 100
        addrs = np.zeros(k, dtype=np.int64)
        stalls = exact_conflict_cycles(addrs, CRAY_C90, issue_rate=1.0)
        expect = (k - 1) * (CRAY_C90.bank_busy - 1.0)
        assert stalls == pytest.approx(expect)

    def test_stride_equal_to_banks(self):
        # stride = n_banks → same bank every time → worst case
        addrs = np.arange(100, dtype=np.int64) * CRAY_C90.n_banks
        worst = exact_conflict_cycles(addrs, CRAY_C90)
        good = exact_conflict_cycles(np.arange(100, dtype=np.int64), CRAY_C90)
        assert worst > good == 0.0

    def test_random_streams_nearly_conflict_free(self, rng):
        """The paper: "since we are choosing random positions …
        systematic memory bank conflicts are unlikely"."""
        addrs = rng.integers(0, 1 << 24, 2000)
        stalls = exact_conflict_cycles(addrs, CRAY_C90)
        assert stalls / 2000 < 0.5  # well under half a cycle/element

    def test_fewer_banks_more_stalls(self, rng):
        addrs = rng.integers(0, 1 << 24, 2000)
        c90 = exact_conflict_cycles(addrs, CRAY_C90)
        ymp = exact_conflict_cycles(addrs, CRAY_YMP)
        assert ymp >= c90

    def test_slower_issue_fewer_stalls(self):
        addrs = np.zeros(50, dtype=np.int64)
        fast = exact_conflict_cycles(addrs, CRAY_C90, issue_rate=1.0)
        slow = exact_conflict_cycles(addrs, CRAY_C90, issue_rate=2.0)
        assert slow < fast


class TestEstimator:
    def test_zero_for_distinct_banks(self):
        addrs = np.arange(4 * CRAY_C90.vector_length, dtype=np.int64)
        assert estimate_conflict_cycles(addrs, CRAY_C90) == 0.0

    def test_detects_single_bank_hotspot(self):
        addrs = np.zeros(512, dtype=np.int64)
        est = estimate_conflict_cycles(addrs, CRAY_C90)
        exact = exact_conflict_cycles(addrs, CRAY_C90)
        assert est > 0
        assert est == pytest.approx(exact, rel=0.35)

    @pytest.mark.parametrize("pattern", ["random", "stride_bank", "mixed"])
    def test_tracks_exact_model(self, pattern, rng):
        n = 3000
        if pattern == "random":
            addrs = rng.integers(0, 1 << 22, n)
        elif pattern == "stride_bank":
            addrs = np.arange(n, dtype=np.int64) * CRAY_C90.n_banks
        else:
            addrs = np.where(
                rng.random(n) < 0.5,
                rng.integers(0, 1 << 22, n),
                np.int64(7),
            )
        est = estimate_conflict_cycles(addrs, CRAY_C90)
        exact = exact_conflict_cycles(addrs, CRAY_C90)
        # agreement within 40% of the stream's issue time
        assert abs(est - exact) <= 0.4 * n + 50

    def test_sampling_path_consistent(self, rng):
        """Sampled long-stream estimate ≈ full estimate (homogeneous)."""
        addrs = np.tile(rng.integers(0, 1 << 20, 128), 2000)  # 256K addrs
        full = estimate_conflict_cycles(addrs, CRAY_C90, max_sample_strips=10**9)
        sampled = estimate_conflict_cycles(addrs, CRAY_C90, max_sample_strips=128)
        assert sampled == pytest.approx(full, rel=0.2, abs=100.0)

    def test_empty(self):
        assert estimate_conflict_cycles(np.empty(0, dtype=np.int64), CRAY_C90) == 0.0


class TestDispatch:
    def test_short_uses_exact(self, rng):
        addrs = rng.integers(0, 1 << 20, 100)
        assert conflict_cycles(addrs, CRAY_C90) == exact_conflict_cycles(
            addrs, CRAY_C90
        )

    def test_long_uses_estimator(self, rng):
        addrs = rng.integers(0, 1 << 20, 10_000)
        assert conflict_cycles(addrs, CRAY_C90) == estimate_conflict_cycles(
            addrs, CRAY_C90
        )
