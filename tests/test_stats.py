"""Tests for the ScanStats instrumentation."""

import pytest

from repro.core.stats import ScanStats


class TestCounters:
    def test_add_work(self):
        s = ScanStats()
        s.add_work(10)
        s.add_work(5, phase="p1")
        assert s.element_ops == 15
        assert s.phases == {"p1": 5}

    def test_gathers_scatters(self):
        s = ScanStats()
        s.add_gather(4)
        s.add_scatter(6)
        assert s.gathers == 4 and s.scatters == 6

    def test_rounds_and_packs(self):
        s = ScanStats()
        s.add_round(3)
        s.add_pack()
        assert s.rounds == 3 and s.packs == 1


class TestSpaceTracking:
    def test_peak_tracks_high_water(self):
        s = ScanStats()
        s.alloc(100)
        s.alloc(50)
        s.free(120)
        s.alloc(10)
        assert s.peak_aux_words == 150

    def test_peak_not_reduced_by_free(self):
        s = ScanStats()
        s.alloc(100)
        s.free(100)
        assert s.peak_aux_words == 100


class TestMerge:
    def test_counters_sum(self):
        a, b = ScanStats(), ScanStats()
        a.add_work(10, "x")
        b.add_work(20, "x")
        b.add_work(5, "y")
        b.add_round()
        a.merge(b)
        assert a.element_ops == 35
        assert a.phases == {"x": 30, "y": 5}
        assert a.rounds == 1

    def test_peak_accounts_for_live_context(self):
        a = ScanStats()
        a.alloc(100)  # live when the sub-invocation runs
        b = ScanStats()
        b.alloc(70)
        b.free(70)
        a.merge(b)
        assert a.peak_aux_words == 170

    def test_work_per_element(self):
        s = ScanStats()
        s.add_work(500)
        assert s.work_per_element(100) == pytest.approx(5.0)
        assert ScanStats().work_per_element(0) == 0.0
