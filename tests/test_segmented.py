"""Unit tests for segmented scans."""

import numpy as np
import pytest

from repro.core.operators import MAX, SUM, get_operator
from repro.core.segmented import (
    pack_segmented_values,
    segmented_list_scan,
    segmented_operator,
)
from repro.lists.generate import list_order, ordered_list, random_list


def reference_segmented(lst, heads, op, inclusive=False):
    """Oracle: walk the list, resetting at segment heads."""
    op = get_operator(op)
    heads = set(int(h) for h in heads) | {lst.head}
    out = np.empty_like(lst.values)
    acc = op.identity_for(lst.values.dtype)
    cur = lst.head
    for _ in range(lst.n):
        if cur in heads:
            acc = op.identity_for(lst.values.dtype)
        if inclusive:
            acc = op.combine(acc, lst.values[cur])
            out[cur] = acc
        else:
            out[cur] = acc
            acc = op.combine(acc, lst.values[cur])
        succ = int(lst.next[cur])
        if succ == cur:
            break
        cur = succ
    return out


class TestSegmentedOperator:
    def test_associative(self, rng):
        seg = segmented_operator(SUM)
        rows = lambda: np.stack(
            [rng.integers(0, 2, 40), rng.integers(-9, 9, 40)], axis=1
        )
        a, b, c = rows(), rows(), rows()
        left = seg.combine(seg.combine(a, b), c)
        right = seg.combine(a, seg.combine(b, c))
        assert np.array_equal(left, right)

    def test_identity(self, rng):
        seg = segmented_operator(SUM)
        x = np.stack([rng.integers(0, 2, 10), rng.integers(-9, 9, 10)], axis=1)
        ident = seg.identity_for(np.int64)
        assert np.array_equal(seg.combine(ident, x), x)

    def test_flag_blocks_flow(self):
        seg = segmented_operator(SUM)
        a = np.array([0, 5], dtype=np.int64)
        b = np.array([1, 7], dtype=np.int64)  # new segment
        assert np.array_equal(seg.combine(a, b), [1, 7])

    def test_no_flag_combines(self):
        seg = segmented_operator(SUM)
        a = np.array([1, 5], dtype=np.int64)
        b = np.array([0, 7], dtype=np.int64)
        assert np.array_equal(seg.combine(a, b), [1, 12])

    def test_rejects_structured_base(self):
        from repro.core.operators import AFFINE

        with pytest.raises(ValueError, match="scalar"):
            segmented_operator(AFFINE)


class TestPacking:
    def test_flags_at_heads(self, rng):
        vals = rng.integers(0, 9, 10)
        rows = pack_segmented_values(vals, [2, 7])
        assert rows[2, 0] == 1 and rows[7, 0] == 1
        assert rows[:, 0].sum() == 2
        assert np.array_equal(rows[:, 1], vals)

    def test_rejects_2d(self, rng):
        with pytest.raises(ValueError):
            pack_segmented_values(np.ones((4, 2)), [0])


class TestSegmentedListScan:
    @pytest.mark.parametrize("algorithm", ["serial", "wyllie", "sublist"])
    def test_matches_oracle(self, algorithm, rng):
        n = 2000
        lst = random_list(n, rng, values=rng.integers(-9, 9, n))
        order = list_order(lst)
        heads = order[np.sort(rng.choice(n, size=17, replace=False))]
        got = segmented_list_scan(
            lst, heads, SUM, algorithm=algorithm, rng=rng
        )
        expect = reference_segmented(lst, heads, SUM)
        assert np.array_equal(got, expect)

    def test_inclusive(self, rng):
        n = 500
        lst = random_list(n, rng, values=rng.integers(-9, 9, n))
        order = list_order(lst)
        heads = order[[100, 200, 499]]
        got = segmented_list_scan(lst, heads, SUM, inclusive=True, rng=rng)
        expect = reference_segmented(lst, heads, SUM, inclusive=True)
        assert np.array_equal(got, expect)

    def test_max_operator(self, rng):
        n = 800
        lst = random_list(n, rng, values=rng.integers(-99, 99, n))
        order = list_order(lst)
        heads = order[[50, 400]]
        got = segmented_list_scan(lst, heads, MAX, rng=rng)
        expect = reference_segmented(lst, heads, MAX)
        assert np.array_equal(got, expect)

    def test_no_extra_segments_is_plain_scan(self, rng):
        from repro.baselines.serial import serial_list_scan

        lst = random_list(300, rng, values=rng.integers(-9, 9, 300))
        got = segmented_list_scan(lst, np.empty(0, dtype=np.int64), rng=rng)
        assert np.array_equal(got, serial_list_scan(lst))

    def test_every_node_its_own_segment(self, rng):
        lst = random_list(100, rng, values=rng.integers(-9, 9, 100))
        got = segmented_list_scan(lst, np.arange(100), SUM, rng=rng)
        assert np.all(got == 0)

    def test_agrees_with_forest_scan(self, rng):
        """Segmented scan over a concatenation ≡ forest scan over the
        pieces (the two multi-list routes agree)."""
        from repro.core.forest import forest_list_scan

        n = 1200
        lst = ordered_list(n, values=rng.integers(-9, 9, n))
        heads = np.asarray([300, 700], dtype=np.int64)
        seg = segmented_list_scan(lst, heads, SUM, rng=rng)
        # build the equivalent forest by cutting before each head
        nxt = lst.next.copy()
        nxt[299] = 299
        nxt[699] = 699
        f = forest_list_scan(
            nxt,
            lst.values,
            np.asarray([0, 300, 700]),
            SUM,
            serial_cutoff=8,
            rng=rng,
        )
        assert np.array_equal(seg, f)
