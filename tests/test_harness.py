"""Unit tests for the benchmark harness utilities."""

import numpy as np

from repro.bench.harness import (
    ExperimentRecord,
    all_records,
    clear_records,
    format_table,
    record,
    summary_lines,
)
from repro.bench.workloads import K, get_random_list, get_valued_list, paper_sizes


class TestRecords:
    def setup_method(self):
        clear_records()

    def teardown_method(self):
        clear_records()

    def test_record_registers(self):
        rec = record("figX", "a claim", 1.0, 1.1, "ns", ok=True)
        assert isinstance(rec, ExperimentRecord)
        assert len(all_records()) == 1

    def test_summary_format(self):
        record("figX", "a claim", 2.0, 1.9, "×", ok=True)
        record("figY", "another", None, 3.0, "", ok=False, note="(why)")
        lines = summary_lines()
        assert lines[0].startswith("[OK ] figX")
        assert "paper=2" in lines[0]
        assert lines[1].startswith("[DIFF] figY")
        assert "paper=—" in lines[1]
        assert "(why)" in lines[1]

    def test_clear(self):
        record("figX", "c", 1.0, 1.0)
        clear_records()
        assert all_records() == []


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["name", "value"], [["abc", 1.5], ["d", 23456.0]])
        lines = out.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert "-+-" in lines[1]
        assert "abc" in lines[2]
        assert "23,456" in lines[3]

    def test_title(self):
        out = format_table(["a"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_nan_rendered_as_dash(self):
        out = format_table(["a"], [[float("nan")]])
        assert "-" in out.splitlines()[-1]

    def test_empty_rows(self):
        out = format_table(["col"], [])
        assert "col" in out


class TestWorkloads:
    def test_cached_identity(self):
        a = get_random_list(1000)
        b = get_random_list(1000)
        assert a is b  # lru cache returns the same object

    def test_different_seeds_differ(self):
        a = get_random_list(1000, seed=0)
        b = get_random_list(1000, seed=1)
        assert not np.array_equal(a.next, b.next)

    def test_valued_list_has_values(self):
        lst = get_valued_list(500)
        assert lst.values.min() < 0 < lst.values.max()

    def test_paper_sizes(self):
        sizes = paper_sizes(8, 512, step=4)
        assert sizes == [8 * K, 32 * K, 128 * K, 512 * K]
