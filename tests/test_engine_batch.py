"""Unit tests for size-class sharding and batch fusion."""

import numpy as np
import pytest

from repro.baselines.serial import serial_list_scan
from repro.core.operators import AFFINE, MAX, SUM
from repro.engine.batch import FusedBatch, shard_requests, size_class
from repro.engine.queue import ScanRequest
from repro.lists.generate import random_list, random_values

from .conftest import make_affine_values


def make_request(n, seed=0, op=SUM, inclusive=False, algorithm="auto"):
    rng = np.random.default_rng(seed)
    lst = random_list(n, rng, values=random_values(n, rng))
    return ScanRequest(lst=lst, op=op, inclusive=inclusive, algorithm=algorithm)


class TestSizeClass:
    def test_tiny(self):
        assert size_class(0) == 0
        assert size_class(1) == 0

    def test_powers_of_two_boundaries(self):
        # class k holds (2^(k-1), 2^k]
        assert size_class(2) == 1
        assert size_class(3) == 2
        assert size_class(4) == 2
        assert size_class(1024) == 10
        assert size_class(1025) == 11

    def test_monotonic(self):
        classes = [size_class(n) for n in range(1, 2000)]
        assert classes == sorted(classes)

    def test_custom_base_bounds_skew(self):
        # within one class of base b, max/min length ratio <= b
        for n in (10, 100, 1000):
            assert size_class(n, base=4.0) <= size_class(n, base=2.0)

    def test_bad_base_rejected(self):
        with pytest.raises(ValueError):
            size_class(10, base=1.0)


class TestSharding:
    def test_groups_by_size_class(self):
        reqs = [make_request(10), make_request(12), make_request(5000)]
        shards = shard_requests(reqs)
        assert len(shards) == 2
        sizes = sorted(len(v) for v in shards.values())
        assert sizes == [1, 2]

    def test_separates_operators_and_flags(self):
        reqs = [
            make_request(100, op=SUM),
            make_request(100, op=MAX),
            make_request(100, op=SUM, inclusive=True),
            make_request(100, op=SUM, algorithm="wyllie"),
        ]
        assert len(shard_requests(reqs)) == 4

    def test_preserves_insertion_order(self):
        reqs = [make_request(100, seed=i) for i in range(6)]
        (shard,) = shard_requests(reqs).values()
        assert [r.request_id for r in shard] == [r.request_id for r in reqs]


class TestFusedBatch:
    def test_structure(self):
        reqs = [make_request(n, seed=n) for n in (50, 60, 70)]
        batch = FusedBatch.fuse(reqs)
        assert batch.n_nodes == 180
        assert batch.n_lists == 3
        assert list(batch.offsets) == [0, 50, 110, 180]
        # each fused list keeps exactly one self-loop tail in its range
        idx = np.arange(batch.n_nodes)
        loops = np.flatnonzero(batch.nxt == idx)
        assert loops.size == 3
        for k in range(3):
            lo, hi = batch.offsets[k], batch.offsets[k + 1]
            assert lo <= batch.heads[k] < hi
            assert ((loops >= lo) & (loops < hi)).sum() == 1

    def test_does_not_alias_inputs(self):
        reqs = [make_request(40, seed=1), make_request(40, seed=2)]
        batch = FusedBatch.fuse(reqs)
        batch.nxt[:] = 0
        batch.values[:] = 0
        for req in reqs:
            assert req.lst.next.max() > 0
            assert np.any(req.lst.values != 0)

    def test_unfuse_roundtrip_matches_serial(self):
        reqs = [make_request(n, seed=n) for n in (30, 45, 64, 7)]
        batch = FusedBatch.fuse(reqs)
        from repro.core.forest import serial_forest_scan

        out = np.empty_like(batch.values)
        serial_forest_scan(
            batch.nxt, batch.values, batch.heads, batch.op, None, out
        )
        parts = batch.unfuse(out)
        for req, part in zip(reqs, parts):
            np.testing.assert_array_equal(part, serial_list_scan(req.lst, SUM))

    def test_unfuse_returns_copies(self):
        reqs = [make_request(20, seed=1), make_request(20, seed=2)]
        batch = FusedBatch.fuse(reqs)
        out = np.zeros_like(batch.values)
        parts = batch.unfuse(out)
        out[:] = 99
        assert np.all(parts[0] == 0)

    def test_affine_values_fuse(self):
        rng = np.random.default_rng(5)
        reqs = [
            ScanRequest(
                lst=random_list(n, rng, values=make_affine_values(rng, n)),
                op=AFFINE,
            )
            for n in (16, 20)
        ]
        batch = FusedBatch.fuse(reqs)
        assert batch.values.shape == (36, 2)

    def test_rejects_mixed_shard(self):
        with pytest.raises(ValueError):
            FusedBatch.fuse([make_request(10, op=SUM), make_request(10, op=MAX)])
        with pytest.raises(ValueError):
            FusedBatch.fuse(
                [make_request(10), make_request(10, inclusive=True)]
            )

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            FusedBatch.fuse([])
