"""Unit tests for the list mutation utilities."""

import numpy as np
import pytest

from repro.baselines.serial import serial_list_scan
from repro.lists.generate import list_order, ordered_list, random_list
from repro.lists.mutate import concatenate, extract, reverse, splice_out, split_after
from repro.lists.validate import validate_list_strict


class TestConcatenate:
    def test_two_lists(self, rng):
        a = random_list(10, rng, values=rng.integers(0, 9, 10))
        b = random_list(7, rng, values=rng.integers(0, 9, 7))
        combined, offsets = concatenate([a, b])
        validate_list_strict(combined)
        assert combined.n == 17
        assert np.array_equal(offsets, [0, 10])
        order = list_order(combined)
        expect = np.concatenate([list_order(a), list_order(b) + 10])
        assert np.array_equal(order, expect)

    def test_values_carried(self, rng):
        a = ordered_list(3, values=np.array([1, 2, 3]))
        b = ordered_list(2, values=np.array([4, 5]))
        combined, _ = concatenate([a, b])
        in_order = combined.values[list_order(combined)]
        assert np.array_equal(in_order, [1, 2, 3, 4, 5])

    def test_single(self, rng):
        a = random_list(5, rng)
        combined, offsets = concatenate([a])
        assert np.array_equal(combined.next, a.next)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            concatenate([])

    def test_scan_of_concatenation(self, rng):
        """Scan of the concatenation continues across the seam."""
        a = ordered_list(4, values=np.array([1, 1, 1, 1]))
        b = ordered_list(3, values=np.array([1, 1, 1]))
        combined, _ = concatenate([a, b])
        out = serial_list_scan(combined)
        assert np.array_equal(out[list_order(combined)], np.arange(7))


class TestExtract:
    def test_middle_segment(self, rng):
        lst = random_list(20, rng, values=rng.integers(0, 99, 20))
        order = list_order(lst)
        piece, ids = extract(lst, int(order[5]), 6)
        validate_list_strict(piece)
        assert np.array_equal(ids, order[5:11])
        assert np.array_equal(piece.values, lst.values[ids])

    def test_past_tail_raises(self, rng):
        lst = random_list(5, rng)
        with pytest.raises(ValueError, match="past the tail"):
            extract(lst, lst.head, 6)

    def test_bad_length(self, rng):
        with pytest.raises(ValueError):
            extract(random_list(5, rng), 0, 0)


class TestSplitAfter:
    def test_pieces_partition_list(self, rng):
        lst = random_list(30, rng, values=rng.integers(0, 99, 30))
        order = list_order(lst)
        pieces = split_after(lst, [int(order[9]), int(order[19])])
        assert len(pieces) == 3
        sizes = [p.n for p, _ in pieces]
        assert sizes == [10, 10, 10]
        recovered = np.concatenate([ids for _, ids in pieces])
        assert np.array_equal(recovered, order)
        for piece, ids in pieces:
            validate_list_strict(piece)
            assert np.array_equal(piece.values[np.arange(piece.n)], lst.values[ids])

    def test_split_after_tail_noop(self, rng):
        lst = random_list(10, rng)
        pieces = split_after(lst, [lst.tail])
        assert len(pieces) == 1
        assert pieces[0][0].n == 10

    def test_no_cuts(self, rng):
        lst = random_list(10, rng)
        pieces = split_after(lst, [])
        assert len(pieces) == 1

    def test_out_of_range(self, rng):
        with pytest.raises(ValueError):
            split_after(random_list(5, rng), [99])

    def test_input_untouched(self, rng):
        lst = random_list(15, rng)
        before = lst.next.copy()
        split_after(lst, [3, 7])
        assert np.array_equal(lst.next, before)


class TestReverse:
    def test_order_reversed(self, rng):
        lst = random_list(25, rng)
        rev = reverse(lst)
        validate_list_strict(rev)
        assert np.array_equal(list_order(rev), list_order(lst)[::-1])

    def test_involution(self, rng):
        lst = random_list(25, rng)
        assert np.array_equal(list_order(reverse(reverse(lst))), list_order(lst))

    def test_singleton(self):
        lst = ordered_list(1)
        rev = reverse(lst)
        assert rev.head == 0


class TestSpliceOut:
    def test_middle(self, rng):
        lst = random_list(20, rng, values=rng.integers(0, 99, 20))
        order = list_order(lst)
        (rem, rem_ids), (seg, seg_ids) = splice_out(
            lst, int(order[5]), int(order[9])
        )
        validate_list_strict(rem)
        validate_list_strict(seg)
        assert np.array_equal(seg_ids, order[5:10])
        assert np.array_equal(rem_ids, np.concatenate([order[:5], order[10:]]))

    def test_prefix(self, rng):
        lst = random_list(12, rng)
        order = list_order(lst)
        (rem, rem_ids), (seg, seg_ids) = splice_out(
            lst, int(order[0]), int(order[3])
        )
        assert np.array_equal(seg_ids, order[:4])
        assert rem.n == 8

    def test_suffix(self, rng):
        lst = random_list(12, rng)
        order = list_order(lst)
        (rem, rem_ids), _ = splice_out(lst, int(order[8]), int(order[11]))
        assert rem.n == 8
        assert np.array_equal(rem_ids, order[:8])

    def test_wrong_direction(self, rng):
        lst = random_list(10, rng)
        order = list_order(lst)
        with pytest.raises(ValueError, match="order"):
            splice_out(lst, int(order[5]), int(order[2]))

    def test_cannot_remove_all(self, rng):
        lst = random_list(6, rng)
        with pytest.raises(ValueError, match="every node"):
            splice_out(lst, lst.head, lst.tail)
