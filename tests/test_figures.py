"""Smoke tests for the figure CSV series (small sizes)."""

import csv

import numpy as np

from repro.bench.figures import (
    ALL_FIGURES,
    figure4_series,
    figure11_series,
    figure12_series,
    write_csv,
)


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        path = write_csv(
            str(tmp_path / "t.csv"), ["a", "b"], [[1, 2.5], [3, 4.5]]
        )
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["a", "b"]
        assert rows[1] == ["1", "2.5"]


class TestSeries:
    def test_registry_complete(self):
        assert set(ALL_FIGURES) == {
            "fig01", "fig03", "fig04", "fig11", "fig12", "fig14", "fig15",
        }

    def test_figure11(self, tmp_path):
        data = figure11_series(out_dir=str(tmp_path))
        assert (tmp_path / "figure11.csv").exists()
        rows = np.asarray([r[2:] for r in data["rows"]], dtype=np.float64)
        # expected/observed columns positive and ordered (min ≤ mean ≤ max)
        assert np.all(rows[:, 2] <= rows[:, 1] + 1e-9)
        assert np.all(rows[:, 1] <= rows[:, 3] + 1e-9)

    def test_figure12(self):
        data = figure12_series()
        g_vals = [r[1] for r in data["rows"]]
        assert max(g_vals) <= 200.0 + 1e-9
        pack_rows = [r for r in data["rows"] if r[2] == 1]
        assert 9 <= len(pack_rows) <= 13

    def test_figure4(self):
        data = figure4_series()
        assert len(data["rows"]) == 8
        # p=1 row: all speedups ≈ 1
        assert all(abs(s - 1.0) < 1e-9 for s in data["rows"][0][1:])
        # speedup at p=8 for the 2M column in the paper's range
        assert 4.5 < data["rows"][-1][3] <= 8.0
