"""Execution backends: equivalence, pool lifecycle, shm transport, tracing.

The contracts under test:

* every executor (``sync`` / ``threads`` / ``processes``) returns
  bit-identical results on the same workload — including cache hits,
  coalesced duplicates, inclusive scans and forced algorithms;
* pools are *persistent*: many batches construct at most one pool, and
  ``Engine.close()`` / the context manager tears it down exactly once;
* shared-memory transport round-trips arrays above the threshold and
  falls back to inline pickling below it, releasing every segment on
  success and failure alike;
* fault containment and trace-span pinning survive the process
  boundary: a shard that dies in a worker quarantines normally, and a
  traced kernel's spans come back attached under the batch tree.
"""

import concurrent.futures
import glob

import numpy as np
import pytest

from repro.core.operators import SUM, Operator
from repro.engine import Engine, ScanRequest
from repro.engine.workers import (
    EXECUTORS,
    ProcessBackend,
    SyncBackend,
    ThreadBackend,
    _attach_array,
    _export_array,
    _release,
    create_backend,
)
from repro.lists.generate import random_list, random_values
from repro.trace import Tracer


def mixed_requests(count=200, max_n=2000, seed=0, algorithm="auto"):
    """A mixed workload: log-uniform sizes, alternating inclusive, a
    duplicate (coalescing) pair every 10 requests."""
    rng = np.random.default_rng(seed)
    sizes = np.clip(
        np.exp(rng.uniform(0, np.log(max_n), count)).astype(int), 1, max_n
    )
    reqs = []
    for i, n in enumerate(sizes):
        n = int(n)
        lst = random_list(n, rng, values=random_values(n, rng))
        reqs.append(
            ScanRequest(
                lst=lst, op=SUM, inclusive=bool(i % 2), algorithm=algorithm, tag=i
            )
        )
        if i % 10 == 9:  # duplicate of the previous request -> coalesces
            reqs.append(
                ScanRequest(
                    lst=lst.copy(), op=SUM, inclusive=bool(i % 2),
                    algorithm=algorithm, tag=f"dup-{i}",
                )
            )
    return reqs


class TestExecutorEquivalence:
    def test_all_executors_bit_identical_mixed_200(self):
        # the PR's acceptance criterion: threads and processes match
        # sync bit for bit on a mixed 200-request workload
        baseline = None
        for executor in EXECUTORS:
            with Engine(executor=executor, seed=11) as engine:
                responses = engine.run_batch(mixed_requests(count=200))
            assert all(r.ok for r in responses)
            results = [r.result for r in responses]
            if baseline is None:
                baseline = results
            else:
                for ref, got in zip(baseline, results):
                    assert got.dtype == ref.dtype
                    np.testing.assert_array_equal(got, ref)

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_forced_sublist_and_unroutable_algorithms(self, executor):
        # forced routable algorithms offload; unroutable ones
        # (random_mate has no forest kernel) fall back to solo runs —
        # both must work on every backend
        for algorithm in ("sublist", "random_mate"):
            reqs = mixed_requests(count=12, max_n=600, seed=3, algorithm=algorithm)
            with Engine(executor=executor, cache_capacity=0, seed=5) as engine:
                responses = engine.run_batch(reqs)
            assert all(r.ok for r in responses)
            with Engine(executor="sync", cache_capacity=0, seed=5) as ref_engine:
                ref = ref_engine.run_batch(
                    mixed_requests(count=12, max_n=600, seed=3, algorithm=algorithm)
                )
            for a, b in zip(responses, ref):
                np.testing.assert_array_equal(a.result, b.result)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            Engine(executor="fibers")
        with pytest.raises(ValueError, match="unknown executor"):
            create_backend("fibers")


class TestPoolLifecycle:
    def test_no_pool_constructed_per_batch(self, monkeypatch):
        # the PR 1 engine built a throwaway ThreadPoolExecutor inside
        # every run_batch call; the persistent backend must construct
        # at most one across arbitrarily many batches
        import repro.engine.workers as workers

        constructed = []
        real = concurrent.futures.ThreadPoolExecutor

        class CountingPool(real):
            def __init__(self, *args, **kwargs):
                constructed.append(1)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(workers, "ThreadPoolExecutor", CountingPool)
        with Engine(executor="threads", cache_capacity=0) as engine:
            for batch in range(5):
                responses = engine.run_batch(
                    mixed_requests(count=16, max_n=400, seed=batch),
                    parallel=True,
                )
                assert all(r.ok for r in responses)
        assert sum(constructed) == 1
        assert engine._backend.pools_created == 1

    def test_pool_is_lazy(self):
        backend = ThreadBackend()
        assert backend.pools_created == 0  # construction does not pool
        backend.close()
        assert backend.pools_created == 0

    @pytest.mark.parametrize("executor", ["threads", "processes"])
    def test_close_tears_down_exactly_once(self, executor):
        engine = Engine(executor=executor, cache_capacity=0)
        engine.run_batch(mixed_requests(count=8, max_n=300), parallel=True)
        backend = engine._backend
        engine.close()
        engine.close()
        with engine:  # re-entering after close is allowed...
            pass  # ...and __exit__'s close is still a no-op
        assert backend.closes_effective == 1

    def test_context_manager_closes(self):
        with Engine(executor="threads", cache_capacity=0) as engine:
            engine.run_batch(mixed_requests(count=8, max_n=300), parallel=True)
        assert engine._backend.closes_effective == 1

    def test_closed_thread_backend_rejects_dispatch(self):
        backend = ThreadBackend()
        backend.close()
        with pytest.raises(RuntimeError, match="closed"):
            backend.map_shards(lambda s: s, [[1], [2]])

    def test_sync_backend_never_pools(self):
        backend = SyncBackend()
        order = []
        backend.map_shards(order.append, ["a", "b", "c"])
        assert order == ["a", "b", "c"]  # sequential, in submission order
        assert backend.pools_created == 0
        backend.close()


class TestSharedMemoryTransport:
    @pytest.mark.parametrize("n", [4, 100_000])
    def test_export_attach_roundtrip(self, n):
        # small arrays ship inline, large ones through a segment; both
        # must round-trip exactly and release every lease
        rng = np.random.default_rng(0)
        arr = rng.integers(-(2**40), 2**40, n)
        leases, holds = [], []
        ref = _export_array(arr, leases, min_bytes=1 << 15)
        assert (ref.shm_name is not None) == (arr.nbytes >= 1 << 15)
        got = _attach_array(ref, holds)
        np.testing.assert_array_equal(got, arr)
        del got
        _release(holds, unlink=False)
        _release(leases, unlink=True)

    def test_segments_released_after_batch(self):
        # a processes batch must leave /dev/shm exactly as it found it
        before = set(glob.glob("/dev/shm/psm_*"))
        with Engine(executor="processes", cache_capacity=0, seed=2) as engine:
            responses = engine.run_batch(mixed_requests(count=30, max_n=3000))
        assert all(r.ok for r in responses)
        leaked = set(glob.glob("/dev/shm/psm_*")) - before
        assert not leaked

    def test_small_shards_use_inline_transport(self):
        backend = ProcessBackend(max_workers=1)
        try:
            nxt = np.array([1, 2, 2], dtype=np.int64)  # tail self-loops
            values = np.array([5, 7, 9], dtype=np.int64)
            heads = np.array([0], dtype=np.int64)
            out, kstats, spans = backend.run_fused(
                nxt, values, heads, "sum", False, "serial", 0, False
            )
            np.testing.assert_array_equal(out, [0, 5, 12])
            assert kstats.element_ops > 0
            assert spans == []
        finally:
            backend.close()


class TestProcessFaultContainment:
    def test_worker_failure_quarantines_not_crashes(self):
        # two same-size-class lists fuse into one shard; one has an
        # out-of-range successor that only explodes *inside the worker*
        # (validation off) — the healthy shard-mate must still get its
        # result through the quarantine retry
        bad = random_list(64, np.random.default_rng(1))
        bad.next[32] = 10**9  # IndexError in the kernel, not at validation
        good = random_list(60, np.random.default_rng(2))
        with Engine(
            executor="processes", cache_capacity=0, validate="off", seed=3
        ) as engine:
            responses = engine.run_batch(
                [ScanRequest(lst=bad), ScanRequest(lst=good)]
            )
        assert [r.ok for r in responses] == [False, True]
        assert responses[0].error.phase == "execute"
        with Engine(executor="sync", cache_capacity=0, seed=3) as ref:
            np.testing.assert_array_equal(
                responses[1].result, ref.run_batch([ScanRequest(lst=good)])[0].result
            )
        assert engine.stats.retries == 1
        assert engine.stats.quarantined == 1

    def test_custom_operator_runs_inline(self):
        # a custom operator cannot be rehydrated by name in a worker
        # process, so its shards must execute inline (and still be right)
        renamed = Operator(name="my-sum", combine=np.add, identity=0)
        reqs = [
            ScanRequest(lst=random_list(50, np.random.default_rng(s)), op=renamed)
            for s in range(4)
        ]
        with Engine(executor="processes", cache_capacity=0, seed=4) as engine:
            responses = engine.run_batch(reqs)
            assert all(r.ok for r in responses)
            assert engine._backend.tasks_offloaded == 0
        sum_reqs = [
            ScanRequest(lst=random_list(50, np.random.default_rng(s)), op=SUM)
            for s in range(4)
        ]
        with Engine(executor="sync", cache_capacity=0, seed=4) as ref_engine:
            for got, ref in zip(responses, ref_engine.run_batch(sum_reqs)):
                np.testing.assert_array_equal(got.result, ref.result)


class TestProcessTraceAdoption:
    def test_worker_kernel_spans_adopted_under_batch_tree(self):
        # trace-span pinning across the process boundary: the sublist
        # kernel records its spans in the worker; they must come back
        # grafted under this batch's execute span
        rng = np.random.default_rng(7)
        reqs = [
            ScanRequest(lst=random_list(n, rng), algorithm="sublist")
            for n in (3000, 3100)
        ]
        tracer = Tracer()
        with Engine(
            executor="processes", cache_capacity=0, seed=8, trace=tracer
        ) as engine:
            responses = engine.run_batch(reqs)
        assert all(r.ok for r in responses)
        root = tracer.last_root()
        assert root.name == "run_batch"
        assert root.attrs == {"requests": 2, "parallel": True}
        (execute,) = root.find_all("execute")
        assert execute.attrs["algorithm"] == "sublist"
        forest = execute.find("forest_scan")
        assert forest is not None  # adopted from the worker process
        assert len(forest.children) > 0  # the kernel's phase spans came too

    def test_untraced_processes_run_records_nothing(self):
        rng = np.random.default_rng(9)
        reqs = [ScanRequest(lst=random_list(n, rng)) for n in (200, 220)]
        with Engine(executor="processes", cache_capacity=0, seed=10) as engine:
            responses = engine.run_batch(reqs)
        assert all(r.ok for r in responses)


class TestWorkerCrashRecovery:
    """A SIGKILLed worker must not leak shm or poison the backend: the
    failing dispatch raises ``BrokenProcessPool``, every lease is
    released, the dead pool is dropped, and the next dispatch builds a
    fresh one (the shm teardown / pool-recovery regression)."""

    @staticmethod
    def _worker_pids(backend):
        return [p.pid for p in backend._pool._processes.values()]

    def test_killed_worker_releases_segments_and_recovers(self):
        import os
        import signal

        from concurrent.futures.process import BrokenProcessPool

        rng = np.random.default_rng(0)
        n = 100_000  # above SHM_MIN_BYTES: arrays cross via /dev/shm
        nxt = np.arange(1, n + 1, dtype=np.int64)
        nxt[-1] = n - 1
        values = rng.integers(-9, 9, n)
        heads = np.array([0], dtype=np.int64)
        backend = ProcessBackend(max_workers=1)
        try:
            out, _, _ = backend.run_fused(
                nxt, values, heads, "sum", False, "serial", 0, False
            )
            expect = out.copy()
            assert backend.pools_created == 1
            before = set(glob.glob("/dev/shm/psm_*"))
            for pid in self._worker_pids(backend):
                os.kill(pid, signal.SIGKILL)
            with pytest.raises(BrokenProcessPool):
                backend.run_fused(
                    nxt, values, heads, "sum", False, "serial", 0, False
                )
            # every lease of the failed dispatch released, pool dropped
            assert set(glob.glob("/dev/shm/psm_*")) - before == set()
            assert backend._pool is None
            # next dispatch: fresh pool, correct answer
            out, _, _ = backend.run_fused(
                nxt, values, heads, "sum", False, "serial", 0, False
            )
            np.testing.assert_array_equal(out, expect)
            assert backend.pools_created == 2
            assert set(glob.glob("/dev/shm/psm_*")) - before == set()
        finally:
            backend.close()

    def test_engine_answers_through_quarantine_after_worker_death(self):
        import os
        import signal

        rng = np.random.default_rng(1)
        reqs = [
            ScanRequest(lst=random_list(n, rng, values=random_values(n, rng)))
            for n in (3000, 3100)
        ]
        with Engine(
            executor="processes", max_workers=1, cache_capacity=0, seed=5
        ) as engine:
            # two same-size-class lists fuse and offload -> pool built
            warm = engine.run_batch(
                [ScanRequest(lst=random_list(n, rng)) for n in (400, 500)]
            )
            assert all(r.ok for r in warm)
            assert engine._backend.pools_created == 1
            for pid in self._worker_pids(engine._backend):
                os.kill(pid, signal.SIGKILL)
            responses = engine.run_batch(reqs)
            # the fused attempt died with the pool; quarantine solos
            # run inline in the parent and still answer every request
            assert all(r.ok for r in responses)
            assert engine.stats.retries == 1
        with Engine(executor="sync", cache_capacity=0, seed=5) as ref:
            for got, ref_resp in zip(responses, ref.run_batch(reqs)):
                np.testing.assert_array_equal(got.result, ref_resp.result)
