"""Unit tests for the serial reference algorithm."""

import numpy as np

from repro.baselines.serial import (
    serial_list_rank,
    serial_list_scan,
    serial_scan_segment,
)
from repro.core.operators import AFFINE, MAX, SUM
from repro.lists.generate import LinkedList, from_order, ordered_list, random_list
from .conftest import make_affine_values


class TestExclusiveScan:
    def test_ordered_sums(self):
        lst = ordered_list(5, values=np.array([1, 2, 3, 4, 5]))
        out = serial_list_scan(lst)
        assert np.array_equal(out, [0, 1, 3, 6, 10])

    def test_head_gets_identity(self, small_list):
        out = serial_list_scan(small_list)
        assert out[small_list.head] == 0

    def test_tail_gets_written(self, small_list):
        # the tail's scan equals total minus its own value
        out = serial_list_scan(small_list)
        total = small_list.values.sum()
        tail = small_list.tail
        assert out[tail] == total - small_list.values[tail]

    def test_singleton(self):
        lst = from_order(np.array([0]), values=np.array([42]))
        assert np.array_equal(serial_list_scan(lst), [0])

    def test_max_operator(self, rng):
        order = rng.permutation(20)
        vals = rng.integers(-100, 100, 20)
        lst = from_order(order, vals)
        out = serial_list_scan(lst, MAX)
        running = MAX.identity_for(vals.dtype)
        for node in order:
            assert out[node] == running
            running = max(running, vals[node])

    def test_does_not_modify_input(self, small_list):
        before_next = small_list.next.copy()
        before_vals = small_list.values.copy()
        serial_list_scan(small_list)
        assert np.array_equal(small_list.next, before_next)
        assert np.array_equal(small_list.values, before_vals)

    def test_out_parameter(self, small_list):
        out = np.empty(small_list.n, dtype=small_list.values.dtype)
        ret = serial_list_scan(small_list, out=out)
        assert ret is out


class TestInclusiveScan:
    def test_ordered_sums(self):
        lst = ordered_list(4, values=np.array([1, 2, 3, 4]))
        out = serial_list_scan(lst, inclusive=True)
        assert np.array_equal(out, [1, 3, 6, 10])

    def test_inclusive_is_exclusive_plus_value(self, small_list):
        excl = serial_list_scan(small_list)
        incl = serial_list_scan(small_list, inclusive=True)
        assert np.array_equal(incl, excl + small_list.values)


class TestRank:
    def test_ordered(self):
        assert np.array_equal(serial_list_rank(ordered_list(6)), np.arange(6))

    def test_random_is_permutation(self, rng):
        lst = random_list(500, rng)
        rank = serial_list_rank(lst)
        assert sorted(rank) == list(range(500))

    def test_rank_equals_scan_of_ones(self, rng):
        lst = random_list(200, rng)
        ones = LinkedList(lst.next, lst.head, np.ones(200, dtype=np.int64))
        assert np.array_equal(serial_list_rank(lst), serial_list_scan(ones))

    def test_head_rank_zero(self, rng):
        lst = random_list(64, rng)
        assert serial_list_rank(lst)[lst.head] == 0

    def test_tail_rank_n_minus_one(self, rng):
        lst = random_list(64, rng)
        assert serial_list_rank(lst)[lst.tail] == 63


class TestAffine:
    def test_affine_scan(self, rng):
        n = 50
        order = rng.permutation(n)
        vals = make_affine_values(rng, n)
        lst = from_order(order, vals)
        out = serial_list_scan(lst, AFFINE)
        # manual composition along the order
        acc = np.array([1, 0], dtype=np.int64)
        for node in order:
            assert np.array_equal(out[node], acc)
            acc = AFFINE.combine(acc, vals[node])


class TestScanSegment:
    def test_single_segment_matches_scan(self, rng):
        lst = random_list(30, rng, values=rng.integers(-9, 9, 30))
        out = np.empty(30, dtype=np.int64)
        carry = serial_scan_segment(
            lst.next, lst.values, lst.head, SUM, np.int64(0), out
        )
        assert np.array_equal(out, serial_list_scan(lst))
        assert carry == lst.values.sum()

    def test_carry_in_seeds_output(self, rng):
        lst = random_list(10, rng, values=rng.integers(1, 5, 10))
        out = np.empty(10, dtype=np.int64)
        serial_scan_segment(lst.next, lst.values, lst.head, SUM, np.int64(100), out)
        assert out[lst.head] == 100

    def test_carry_without_output(self, rng):
        lst = random_list(10, rng, values=rng.integers(1, 5, 10))
        carry = serial_scan_segment(
            lst.next, lst.values, lst.head, SUM, np.int64(0), None
        )
        assert carry == lst.values.sum()
