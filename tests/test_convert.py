"""Unit tests for rank/permutation/array conversions."""

import numpy as np
import pytest

from repro.baselines.serial import serial_list_rank, serial_list_scan
from repro.core.operators import AFFINE, MAX, SUM
from repro.lists.convert import (
    array_exclusive_scan,
    array_inclusive_scan,
    list_from_array,
    rank_to_order,
    reorder_by_rank,
)
from repro.lists.generate import list_order, random_list
from .conftest import make_affine_values


class TestRankToOrder:
    def test_inverse_relation(self, rng):
        lst = random_list(200, rng)
        rank = serial_list_rank(lst)
        order = rank_to_order(rank)
        assert np.array_equal(order, list_order(lst))

    def test_identity_rank(self):
        assert np.array_equal(rank_to_order(np.arange(5)), np.arange(5))

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError, match="permutation"):
            rank_to_order(np.array([0, 0, 2]))


class TestReorderByRank:
    def test_places_by_rank(self):
        payload = np.array([10, 20, 30])
        rank = np.array([2, 0, 1])
        assert np.array_equal(reorder_by_rank(payload, rank), [20, 30, 10])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            reorder_by_rank(np.ones(3), np.arange(4))

    def test_roundtrip(self, rng):
        lst = random_list(100, rng, values=rng.integers(0, 99, 100))
        rank = serial_list_rank(lst)
        in_order = reorder_by_rank(lst.values, rank)
        assert np.array_equal(in_order[rank], lst.values)


class TestArrayScans:
    def test_exclusive_sum(self):
        out = array_exclusive_scan(np.array([1, 2, 3, 4]))
        assert np.array_equal(out, [0, 1, 3, 6])

    def test_inclusive_sum(self):
        out = array_inclusive_scan(np.array([1, 2, 3, 4]))
        assert np.array_equal(out, [1, 3, 6, 10])

    def test_exclusive_max(self, rng):
        x = rng.integers(-50, 50, 30)
        out = array_exclusive_scan(x, MAX)
        assert out[0] == MAX.identity_for(x.dtype)
        assert np.array_equal(out[1:], np.maximum.accumulate(x)[:-1])

    def test_exclusive_affine_generic_path(self, rng):
        """AFFINE has no ufunc — exercises the doubling accumulate."""
        x = make_affine_values(rng, 25)
        out = array_exclusive_scan(x, AFFINE)
        acc = AFFINE.identity_for(x.dtype)
        for k in range(25):
            assert np.array_equal(out[k], acc)
            acc = AFFINE.combine(acc, x[k])

    def test_out_parameter(self, rng):
        x = rng.integers(0, 9, 10)
        out = np.empty_like(x)
        ret = array_exclusive_scan(x, SUM, out=out)
        assert ret is out

    def test_empty(self):
        out = array_exclusive_scan(np.empty(0, dtype=np.int64))
        assert out.shape == (0,)


class TestListFromArray:
    def test_default_order(self, rng):
        vals = rng.integers(0, 9, 12)
        lst = list_from_array(vals)
        assert np.array_equal(list_order(lst), np.arange(12))
        assert np.array_equal(lst.values, vals)

    def test_custom_order_scan_matches_array_scan(self, rng):
        vals = rng.integers(-9, 9, 64)
        order = rng.permutation(64)
        lst = list_from_array(vals, order)
        out = serial_list_scan(lst)
        # scanning the list in order == scanning values[order] as array
        assert np.array_equal(out[order], array_exclusive_scan(vals[order]))
