"""Unit tests for the Anderson/Miller queued-splice algorithm."""

import numpy as np
import pytest

from repro.baselines.anderson_miller import (
    anderson_miller_list_rank,
    anderson_miller_list_scan,
)
from repro.baselines.serial import serial_list_rank, serial_list_scan
from repro.core.operators import AFFINE, MAX
from repro.core.stats import ScanStats
from repro.lists.generate import from_order, ordered_list, random_list, reversed_list
from .conftest import make_affine_values

SIZES = [1, 2, 3, 4, 5, 8, 50, 333, 5000]


class TestCorrectness:
    @pytest.mark.parametrize("n", SIZES)
    def test_random_lists(self, n, rng):
        lst = random_list(n, rng, values=rng.integers(-9, 9, n))
        got = anderson_miller_list_scan(lst, rng=rng)
        assert np.array_equal(got, serial_list_scan(lst)), f"n={n}"

    @pytest.mark.parametrize("layout", [ordered_list, reversed_list])
    def test_layouts(self, layout, rng):
        lst = layout(777, values=rng.integers(-9, 9, 777))
        assert np.array_equal(
            anderson_miller_list_scan(lst, rng=rng), serial_list_scan(lst)
        )

    @pytest.mark.parametrize("block", [1, 2, 5, 64, 500])
    def test_block_sizes(self, block, rng):
        lst = random_list(500, rng, values=rng.integers(-9, 9, 500))
        got = anderson_miller_list_scan(lst, block_size=block, rng=rng)
        assert np.array_equal(got, serial_list_scan(lst))

    def test_max(self, rng):
        lst = random_list(1000, rng, values=rng.integers(-99, 99, 1000))
        assert np.array_equal(
            anderson_miller_list_scan(lst, MAX, rng=rng),
            serial_list_scan(lst, MAX),
        )

    def test_affine(self, rng):
        n = 1000
        lst = from_order(rng.permutation(n), make_affine_values(rng, n))
        assert np.array_equal(
            anderson_miller_list_scan(lst, AFFINE, rng=rng),
            serial_list_scan(lst, AFFINE),
        )

    def test_inclusive(self, rng):
        lst = random_list(500, rng, values=rng.integers(-9, 9, 500))
        assert np.array_equal(
            anderson_miller_list_scan(lst, inclusive=True, rng=rng),
            serial_list_scan(lst, inclusive=True),
        )

    def test_rank(self, rng):
        lst = random_list(800, rng)
        assert np.array_equal(
            anderson_miller_list_rank(lst, rng=rng), serial_list_rank(lst)
        )

    def test_input_unmodified(self, small_list, rng):
        before_next = small_list.next.copy()
        before_vals = small_list.values.copy()
        anderson_miller_list_scan(small_list, rng=rng)
        assert np.array_equal(small_list.next, before_next)
        assert np.array_equal(small_list.values, before_vals)

    def test_many_seeds(self, rng):
        lst = random_list(97, rng, values=rng.integers(-9, 9, 97))
        expect = serial_list_scan(lst)
        for seed in range(20):
            assert np.array_equal(
                anderson_miller_list_scan(lst, rng=seed), expect
            )

    def test_rejects_bad_block(self, small_list):
        with pytest.raises(ValueError, match="block_size"):
            anderson_miller_list_scan(small_list, block_size=0)


class TestStats:
    def test_no_global_packing_work_linear(self, rng):
        """Anderson/Miller avoids the global pack; per-element work stays
        bounded even though blocked processors retry."""
        n = 20_000
        stats = ScanStats()
        anderson_miller_list_scan(random_list(n, rng), rng=rng, stats=stats)
        assert stats.work_per_element(n) < 12.0

    def test_rounds_scale_with_block_size(self, rng):
        lst = random_list(4096, rng)
        s_small, s_big = ScanStats(), ScanStats()
        anderson_miller_list_scan(lst, block_size=2, rng=1, stats=s_small)
        anderson_miller_list_scan(lst, block_size=64, rng=1, stats=s_big)
        # larger blocks → fewer processors → more rounds to drain queues
        assert s_big.rounds > s_small.rounds
