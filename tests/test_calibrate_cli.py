"""Exit-code contracts for ``calibrate``, ``perf-gate``, and the
``--calibration`` hot-swap flag — the surface the CI jobs script
against (0 = pass, 1 = gate failure, 2 = unusable input).

Also covers the ``bench.regression`` comparison logic the perf-gate
builds on, with synthetic baselines and reports.
"""

import json
from pathlib import Path

import pytest

from repro.bench.regression import (
    GateError,
    baseline_from_records,
    compare_records,
    load_baseline,
    results_as_dict,
)
from repro.calibrate import load_profile
from repro.cli import build_parser, main

from .test_calibrate import serial_samples, sublist_samples


@pytest.fixture
def samples_file(tmp_path):
    """A bare-array fit-sample artifact covering serial + sublist."""
    path = tmp_path / "samples.json"
    docs = [s.as_dict() for s in serial_samples() + sublist_samples()]
    path.write_text(json.dumps(docs))
    return str(path)


@pytest.fixture
def profile_file(tmp_path, samples_file):
    """A fitted profile written through the real CLI path."""
    out = str(tmp_path / "profile.json")
    assert main(["calibrate", "fit", "--from-bench", samples_file,
                 "--no-tune", "--out", out]) == 0
    return out


def bench_report(tmp_path, measured, name="report.json"):
    """A minimal bench artifact with one ratio record per entry."""
    path = tmp_path / name
    path.write_text(json.dumps({
        "records": [
            {"experiment": exp, "claim": claim, "measured": value,
             "unit": "x", "ok": True, "note": ""}
            for (exp, claim), value in measured.items()
        ],
    }))
    return str(path)


class TestParserDefaults:
    def test_calibrate_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["calibrate"])

    def test_calibrate_fit_defaults(self):
        args = build_parser().parse_args(["calibrate", "fit", "--live"])
        assert args.out == "calibration.json"
        assert args.from_bench == [] and args.from_trace == []
        assert args.repeats == 3 and args.seed == 0
        assert not args.no_tune

    def test_perf_gate_requires_report(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["perf-gate"])

    def test_perf_gate_defaults(self):
        args = build_parser().parse_args(["perf-gate", "--report", "r.json"])
        assert args.baseline == "benchmarks/baselines/speedups-smoke.json"
        assert args.warn_ratio is None and args.fail_ratio is None
        assert not args.warn_only and not args.update_baseline

    def test_batch_and_serve_accept_calibration(self):
        assert build_parser().parse_args(["batch"]).calibration is None
        args = build_parser().parse_args(["serve", "--calibration", "p.json"])
        assert args.calibration == "p.json"


class TestCalibrateFit:
    def test_no_source_is_usage_error(self, capsys):
        assert main(["calibrate", "fit"]) == 2
        assert "sample source" in capsys.readouterr().err

    def test_missing_artifact_exits_2(self, tmp_path, capsys):
        absent = str(tmp_path / "absent.json")
        assert main(["calibrate", "fit", "--from-bench", absent]) == 2
        assert "absent.json" in capsys.readouterr().err

    def test_artifact_without_samples_exits_2(self, tmp_path, capsys):
        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps({"records": []}))
        assert main(["calibrate", "fit", "--from-bench", str(empty)]) == 2
        assert "no fit samples" in capsys.readouterr().err

    def test_unfittable_samples_exit_1(self, tmp_path, capsys):
        # two samples sharing one x: degenerate design, FitError
        path = tmp_path / "degenerate.json"
        path.write_text(json.dumps([
            {"kind": "serial", "x": 1000, "seconds": 1e-3},
            {"kind": "serial", "x": 1000, "seconds": 2e-3},
        ]))
        assert main(["calibrate", "fit", "--from-bench", str(path)]) == 1
        assert "calibrate fit" in capsys.readouterr().err

    def test_fit_writes_valid_profile(self, profile_file, capsys):
        profile = load_profile(profile_file)  # load_profile validates
        assert profile.fitted_kinds == ("serial", "sublist")
        assert profile.costs.clock_ns == 1.0


class TestCalibrateShowCheck:
    def test_show_table(self, profile_file, capsys):
        assert main(["calibrate", "show", profile_file]) == 0
        out = capsys.readouterr().out
        assert "serial T(n)" in out and "fit[sublist]" in out

    def test_show_json_round_trips(self, profile_file, capsys):
        assert main(["calibrate", "show", profile_file, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema_version"] == 1

    def test_show_missing_file_exits_1(self, tmp_path, capsys):
        assert main(["calibrate", "show", str(tmp_path / "no.json")]) == 1

    def test_check_ok(self, profile_file, capsys):
        assert main(["calibrate", "check", profile_file]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "crossover" in out

    def test_check_rejects_absurd_coefficients(self, profile_file, capsys):
        doc = json.loads(Path(profile_file).read_text())
        doc["costs"]["serial_per_elem"] = -1.0
        with open(profile_file, "w") as fp:
            json.dump(doc, fp)
        assert main(["calibrate", "check", profile_file]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_check_rejects_wrong_schema(self, profile_file, capsys):
        doc = json.loads(Path(profile_file).read_text())
        doc["schema_version"] = 99
        with open(profile_file, "w") as fp:
            json.dump(doc, fp)
        assert main(["calibrate", "check", profile_file]) == 1


class TestBatchCalibration:
    def test_batch_hot_swaps_profile_into_stats(self, profile_file, capsys):
        code = main(["batch", "-n", "4000", "--count", "8",
                     "--calibration", profile_file, "--stats"])
        assert code == 0
        out = capsys.readouterr().out
        snap = json.loads(out[out.index("{"):])
        assert snap["calibration"]["active"] is True
        assert snap["calibration"]["drift"]["observations"] >= 0

    def test_batch_rejects_bad_profile(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        code = main(["batch", "-n", "1000", "--count", "4",
                     "--calibration", str(bad)])
        assert code == 2
        assert "calibration" in capsys.readouterr().err


class TestPerfGateCommand:
    KEYS = {("engine", "batching beats solo"): 2.4,
            ("kernels", "numpy beats python"): 30.0}

    def baseline_file(self, tmp_path):
        report = bench_report(tmp_path, self.KEYS, name="base-report.json")
        baseline = str(tmp_path / "baseline.json")
        assert main(["perf-gate", "--report", report,
                     "--baseline", baseline, "--update-baseline"]) == 0
        return baseline

    def test_update_baseline_then_pass(self, tmp_path, capsys):
        baseline = self.baseline_file(tmp_path)
        doc = json.loads(Path(baseline).read_text())
        assert doc["schema_version"] == 1
        assert len(doc["records"]) == 2
        report = bench_report(tmp_path, self.KEYS)
        assert main(["perf-gate", "--report", report,
                     "--baseline", baseline]) == 0
        assert "OK" in capsys.readouterr().out

    def test_regression_beyond_fail_ratio_exits_1(self, tmp_path, capsys):
        baseline = self.baseline_file(tmp_path)
        slow = {k: v / 3.0 for k, v in self.KEYS.items()}  # 3x regression
        report = bench_report(tmp_path, slow)
        out_json = str(tmp_path / "gate.json")
        assert main(["perf-gate", "--report", report, "--baseline", baseline,
                     "--json-out", out_json]) == 1
        assert "FAIL" in capsys.readouterr().err
        gate = json.loads(Path(out_json).read_text())
        assert gate["counts"]["fail"] == 2
        assert all(r["regression"] == pytest.approx(3.0)
                   for r in gate["results"])

    def test_warn_band_does_not_fail(self, tmp_path, capsys):
        baseline = self.baseline_file(tmp_path)
        slow = {k: v / 1.7 for k, v in self.KEYS.items()}  # warn, not fail
        report = bench_report(tmp_path, slow)
        assert main(["perf-gate", "--report", report,
                     "--baseline", baseline]) == 0
        assert "WARN" in capsys.readouterr().out

    def test_warn_only_downgrades_hard_failures(self, tmp_path, capsys):
        baseline = self.baseline_file(tmp_path)
        slow = {k: v / 10.0 for k, v in self.KEYS.items()}
        report = bench_report(tmp_path, slow)
        assert main(["perf-gate", "--report", report, "--baseline", baseline,
                     "--warn-only"]) == 0
        assert "advisory" in capsys.readouterr().out

    def test_missing_benchmark_fails_the_gate(self, tmp_path, capsys):
        baseline = self.baseline_file(tmp_path)
        only_one = {("engine", "batching beats solo"): 2.4}
        report = bench_report(tmp_path, only_one)
        assert main(["perf-gate", "--report", report,
                     "--baseline", baseline]) == 1

    def test_custom_ratios(self, tmp_path):
        baseline = self.baseline_file(tmp_path)
        slow = {k: v / 1.7 for k, v in self.KEYS.items()}
        report = bench_report(tmp_path, slow)
        # tighten the hard gate below the observed 1.7x: now it fails
        assert main(["perf-gate", "--report", report, "--baseline", baseline,
                     "--warn-ratio", "1.1", "--fail-ratio", "1.5"]) == 1

    def test_unreadable_report_exits_2(self, tmp_path, capsys):
        baseline = self.baseline_file(tmp_path)
        assert main(["perf-gate", "--report", str(tmp_path / "no.json"),
                     "--baseline", baseline]) == 2

    def test_unreadable_baseline_exits_2(self, tmp_path, capsys):
        report = bench_report(tmp_path, self.KEYS)
        assert main(["perf-gate", "--report", report,
                     "--baseline", str(tmp_path / "no-base.json")]) == 2

    def test_bad_ratio_band_exits_2(self, tmp_path, capsys):
        baseline = self.baseline_file(tmp_path)
        report = bench_report(tmp_path, self.KEYS)
        assert main(["perf-gate", "--report", report, "--baseline", baseline,
                     "--warn-ratio", "3.0", "--fail-ratio", "2.0"]) == 2


class TestGateLogic:
    def test_baseline_keeps_only_positive_ratio_records(self):
        records = [
            {"experiment": "a", "claim": "x", "measured": 2.0, "unit": "x"},
            {"experiment": "a", "claim": "y", "measured": 120.0, "unit": "ms"},
            {"experiment": "a", "claim": "z", "measured": 0.0, "unit": "x"},
            {"experiment": "a", "claim": "w", "measured": float("nan"),
             "unit": "x"},
        ]
        doc = baseline_from_records(records, created_at=5.0)
        assert list(doc["records"]) == ["a|x"]
        assert doc["created_at"] == 5.0

    def test_duplicate_keys_keep_last_occurrence(self):
        records = [
            {"experiment": "a", "claim": "x", "measured": 2.0, "unit": "x"},
            {"experiment": "a", "claim": "x", "measured": 3.0, "unit": "x"},
        ]
        doc = baseline_from_records(records)
        assert doc["records"]["a|x"]["measured"] == 3.0

    def test_statuses_cover_all_cases(self):
        baseline = {
            "ok|1": {"measured": 2.0},
            "warn|1": {"measured": 2.0},
            "fail|1": {"measured": 2.0},
            "missing|1": {"measured": 2.0},
        }
        records = [
            {"experiment": "ok", "claim": "1", "measured": 1.9, "unit": "x"},
            {"experiment": "warn", "claim": "1", "measured": 1.1, "unit": "x"},
            {"experiment": "fail", "claim": "1", "measured": 0.9, "unit": "x"},
            {"experiment": "new", "claim": "1", "measured": 5.0, "unit": "x"},
        ]
        results = compare_records(records, baseline)
        by_key = {r.key: r.status for r in results}
        assert by_key == {"ok|1": "ok", "warn|1": "warn", "fail|1": "fail",
                          "missing|1": "missing", "new|1": "new"}
        counts = results_as_dict(results)["counts"]
        assert counts == {"ok": 1, "warn": 1, "fail": 1, "new": 1,
                          "missing": 1}

    def test_improvements_are_always_ok(self):
        baseline = {"a|x": {"measured": 2.0}}
        records = [{"experiment": "a", "claim": "x", "measured": 50.0,
                    "unit": "x"}]
        (result,) = compare_records(records, baseline)
        assert result.status == "ok"
        assert result.regression == pytest.approx(0.04)

    def test_load_baseline_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text(json.dumps({"schema_version": 99, "records": {}}))
        with pytest.raises(GateError, match="schema"):
            load_baseline(str(path))

    def test_committed_smoke_baseline_is_loadable(self):
        # the file the CI bench-smoke job gates against must stay valid
        baseline = load_baseline("benchmarks/baselines/speedups-smoke.json")
        assert baseline, "committed baseline has no records"
        for key, entry in baseline.items():
            assert "|" in key
            assert entry["measured"] > 0
