"""Unit tests for parameter tuning (paper Section 4.4)."""

import math

import pytest

from repro.analysis.cost_model import total_time
from repro.core.schedule import optimal_schedule
from repro.core.tuning import (
    PolylogFit,
    default_parameters,
    fit_polylog,
    tune_grid,
    tuned_parameters,
)


class TestTuneGrid:
    def test_returns_valid_parameters(self):
        m, s1, t = tune_grid(100_000)
        assert 2 <= m < 100_000
        assert s1 > 0
        assert t > 0

    def test_beats_naive_choices(self):
        """The tuned point beats obviously bad (m, s1) settings."""
        n = 100_000
        m, s1, t_best = tune_grid(n)
        for m_bad, s1_bad in [(4, 1.0), (n // 4, 1.0), (64, 2000.0)]:
            sch = optimal_schedule(n, m_bad, s1_bad)
            t_bad = total_time(n, m_bad, sch)
            assert t_best <= t_bad * 1.001

    def test_m_grows_with_n(self):
        m_small, _, _ = tune_grid(10_000)
        m_large, _, _ = tune_grid(10_000_000)
        assert m_large > m_small

    def test_m_within_paper_bound(self):
        """Table 1: m ≤ n / log n."""
        for n in (10_000, 1_000_000):
            m, _, _ = tune_grid(n)
            assert m <= n / math.log2(n) * 1.5


class TestTunedParameters:
    def test_cached_and_stable(self):
        a = tuned_parameters(100_000)
        b = tuned_parameters(100_000)
        assert a == b

    def test_bucketing_near_sizes(self):
        """Nearby sizes share a bucket (cache friendliness)."""
        a = tuned_parameters(100_000)
        b = tuned_parameters(101_000)
        assert a[0] == b[0]

    def test_tiny_n(self):
        m, s1 = tuned_parameters(3)
        assert m == 2 and s1 > 0

    def test_m_clamped_to_half_n(self):
        m, _ = tuned_parameters(16)
        assert m <= 8

    def test_default_parameters_alias(self):
        assert default_parameters(50_000) == tuned_parameters(50_000)


class TestPolylogFit:
    @pytest.fixture(scope="class")
    def fit(self):
        ns = [2**k for k in range(10, 22, 2)]
        return fit_polylog(ns)

    def test_fit_reproduces_tuned_m(self, fit):
        """The cubic-in-log fit tracks the grid-tuned m within 2× over
        the fitted range (the paper accepts ~2% time error, which is
        far looser in m)."""
        for n in (2**12, 2**16, 2**20):
            m_fit = fit.m(n)
            m_grid, _, _ = tune_grid(n)
            assert 0.4 < m_fit / m_grid < 2.5, f"n={n}"

    def test_fit_time_near_optimal(self, fit):
        """Running with fitted parameters costs within 10% of the
        grid-tuned model time (the paper's 'performed very well in
        practice')."""
        for n in (2**13, 2**17, 2**21):
            m_f, s1_f = fit.m(n), fit.s1(n)
            sch = optimal_schedule(n, m_f, s1_f)
            t_fit = total_time(n, m_f, sch)
            _, _, t_best = tune_grid(n)
            assert t_fit <= t_best * 1.10, f"n={n}"

    def test_fit_clips(self, fit):
        assert fit.m(8) >= 2
        assert fit.s1(8) >= 1.0

    def test_needs_enough_points(self):
        with pytest.raises(ValueError):
            fit_polylog([1024, 2048])

    def test_manual_coefficients(self):
        f = PolylogFit(m_coeffs=(0, 0, 1, 0), s1_coeffs=(0, 0, 0, 1))
        # m = exp(ln n) = n, clipped to n/2
        assert f.m(100) == 50
        assert f.s1(100) == pytest.approx(math.e)
