"""Property-based tests for tracing invariants (the issue's satellite).

Three invariants over random lists and seeds:

1. **Span containment** — with a deterministic counting clock, every
   child span opens and closes inside its parent, and the children's
   durations sum to no more than the parent's.
2. **Trajectory monotonicity** — the observed live-sublist count never
   increases across packs, and the cumulative step counter strictly
   increases (a pack is only emitted after real traversal work).
3. **Observational transparency** — scan results are bit-identical
   across ``trace=None``, ``trace="off"``, and a live ``Tracer`` for
   the same input and kernel seed.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sublist import sublist_list_scan
from repro.lists.generate import random_list, random_values
from repro.trace import Tracer, counting_clock, find_scan_span

# big enough to clear the serial base case, small enough to keep
# hypothesis example counts affordable
sizes = st.integers(min_value=4_000, max_value=30_000)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _traced_scan(n, seed):
    rng = np.random.default_rng(seed)
    lst = random_list(n, rng, values=random_values(n, rng))
    tracer = Tracer(clock=counting_clock())
    out = sublist_list_scan(lst, "sum", trace=tracer, rng=seed)
    return out, tracer


@settings(max_examples=15, deadline=None)
@given(n=sizes, seed=seeds)
def test_child_spans_nest_within_parent(n, seed):
    _, tracer = _traced_scan(n, seed)
    for root in tracer.roots:
        for span in root.walk():
            assert span.t1 is not None, f"{span.name} left open"
            assert span.t1 >= span.t0
            for child in span.children:
                assert span.t0 < child.t0
                assert child.t1 < span.t1
            assert sum(c.duration for c in span.children) <= span.duration
            for event in span.events:
                assert span.t0 < event.t < span.t1


@settings(max_examples=15, deadline=None)
@given(n=sizes, seed=seeds)
def test_observed_live_counts_non_increasing(n, seed):
    _, tracer = _traced_scan(n, seed)
    scan = find_scan_span(tracer)
    assert scan is not None
    for phase_name in ("phase1", "phase3"):
        phase = scan.find(phase_name)
        assert phase is not None
        packs = phase.events_named("pack")
        lives = [e.attrs["live_after"] for e in packs]
        assert lives == sorted(lives, reverse=True)
        for e in packs:
            assert 0 <= e.attrs["live_after"] <= e.attrs["live_before"]
        steps = [e.attrs["step"] for e in packs]
        assert all(a < b for a, b in zip(steps, steps[1:]))


@settings(max_examples=10, deadline=None)
@given(n=sizes, seed=seeds)
def test_results_bit_identical_across_trace_modes(n, seed):
    rng = np.random.default_rng(seed)
    lst = random_list(n, rng, values=random_values(n, rng))
    plain = sublist_list_scan(lst.copy(), "sum", rng=seed)
    off = sublist_list_scan(lst.copy(), "sum", rng=seed, trace="off")
    traced = sublist_list_scan(lst.copy(), "sum", rng=seed, trace=Tracer())
    np.testing.assert_array_equal(plain, off)
    np.testing.assert_array_equal(plain, traced)
