"""Unit tests for multiprocessor composition utilities."""

import pytest

from repro.machine.config import CRAY_C90
from repro.machine.multiproc import combine_parallel, make_vms, shard_slices


class TestShardSlices:
    def test_covers_range_exactly(self):
        slices = shard_slices(100, 7)
        covered = []
        for s in slices:
            covered.extend(range(s.start, s.stop))
        assert covered == list(range(100))

    def test_balanced_within_one(self):
        sizes = [s.stop - s.start for s in shard_slices(100, 7)]
        assert max(sizes) - min(sizes) <= 1

    def test_single_shard(self):
        assert shard_slices(10, 1) == [slice(0, 10)]

    def test_more_shards_than_items(self):
        slices = shard_slices(3, 8)
        sizes = [s.stop - s.start for s in slices]
        assert sum(sizes) == 3
        assert len(slices) == 8

    def test_empty(self):
        assert sum(s.stop - s.start for s in shard_slices(0, 4)) == 0

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            shard_slices(10, 0)


class TestMakeVMs:
    def test_count(self):
        assert len(make_vms(CRAY_C90, 4)) == 4

    def test_independent_ledgers(self):
        vms = make_vms(CRAY_C90, 2)
        vms[0].charge_cycles(10.0)
        assert vms[1].cycles == 0.0

    def test_rejects_too_many(self):
        with pytest.raises(ValueError, match="at most"):
            make_vms(CRAY_C90, 17)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            make_vms(CRAY_C90, 0)


class TestCombineParallel:
    def test_single_cpu_no_overhead(self):
        assert combine_parallel([1000.0], CRAY_C90) == 1000.0

    def test_takes_maximum(self):
        combined = combine_parallel([100.0, 900.0, 500.0], CRAY_C90, n_syncs=0)
        assert combined == 900.0 + CRAY_C90.task_start_cycles

    def test_sync_costs_added(self):
        a = combine_parallel([100.0, 100.0], CRAY_C90, n_syncs=1)
        b = combine_parallel([100.0, 100.0], CRAY_C90, n_syncs=3)
        assert b - a == pytest.approx(2 * CRAY_C90.sync_cycles)

    def test_empty(self):
        assert combine_parallel([], CRAY_C90) == 0.0
