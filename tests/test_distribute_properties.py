"""Property-based tests: the sharded scan ≡ the in-memory kernels.

Hypothesis drives arbitrary valid lists (including layouts engineered
to cross chunk boundaries constantly), arbitrary chunk counts, and
multi-list forests through :func:`repro.distribute.sharded_forest_scan`
and asserts bit-identity against ``sublist_list_scan`` /
``forest_list_scan`` — the ISSUE's acceptance bar for the distributed
path.  The executor matrix rides on a module-scoped backend per kind
so pool startup doesn't dominate.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.forest import forest_list_scan
from repro.core.operators import MAX, MIN, SUM, XOR
from repro.core.sublist import sublist_list_scan
from repro.distribute import DistributedConfig, sharded_forest_scan, sharded_list_scan
from repro.engine.workers import create_backend
from repro.lists.generate import INDEX_DTYPE, from_order

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

SCAN_OPS = [SUM, MAX, MIN, XOR]


@st.composite
def linked_lists(draw, max_n=300):
    """A random valid list; half the draws use a boundary-hostile
    permutation (adjacent nodes land in different chunks)."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    if draw(st.booleans()):
        order = rng.permutation(n)
    else:
        # stride the traversal across the whole index range so nearly
        # every link crosses a chunk boundary
        stride = draw(st.integers(min_value=2, max_value=max(2, n)))
        order = np.argsort((np.arange(n) * stride) % n, kind="stable")
    values = rng.integers(-50, 50, n)
    return from_order(order, values)


@st.composite
def forests(draw, max_lists=4, max_n=120):
    """Several lists fused into one successor array (shuffled node
    numbering, so list membership interleaves across chunks)."""
    k = draw(st.integers(min_value=1, max_value=max_lists))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    sizes = [draw(st.integers(min_value=1, max_value=max_n)) for _ in range(k)]
    total = sum(sizes)
    relabel = rng.permutation(total)
    nxt = np.empty(total, dtype=INDEX_DTYPE)
    heads = []
    offset = 0
    for size in sizes:
        lst = from_order(rng.permutation(size), np.zeros(size))
        local = relabel[offset : offset + size]
        nxt[local] = local[lst.next]
        heads.append(local[lst.head])
        offset += size
    values = rng.integers(-50, 50, total)
    return nxt, values, np.asarray(heads, dtype=INDEX_DTYPE)


class TestShardedEquivalence:
    @settings(max_examples=60, **COMMON)
    @given(
        lst=linked_lists(),
        num_chunks=st.integers(min_value=1, max_value=12),
        seed=st.integers(0, 1000),
    )
    def test_equals_sublist_any_chunking(self, lst, num_chunks, seed):
        expect = sublist_list_scan(lst, rng=seed)
        got = sharded_list_scan(
            lst, config=DistributedConfig(num_chunks=num_chunks), rng=seed
        )
        assert np.array_equal(got, expect)

    @settings(max_examples=30, **COMMON)
    @given(
        lst=linked_lists(max_n=200),
        num_chunks=st.integers(min_value=1, max_value=8),
        seed=st.integers(0, 1000),
        inclusive=st.booleans(),
    )
    def test_operators_and_inclusive(self, lst, num_chunks, seed, inclusive):
        for op in SCAN_OPS:
            expect = sublist_list_scan(lst, op, inclusive=inclusive, rng=seed)
            got = sharded_list_scan(
                lst,
                op,
                inclusive=inclusive,
                config=DistributedConfig(num_chunks=num_chunks),
                rng=seed,
            )
            assert np.array_equal(got, expect), op.name

    @settings(max_examples=40, **COMMON)
    @given(
        forest=forests(),
        num_chunks=st.integers(min_value=1, max_value=10),
        seed=st.integers(0, 1000),
    )
    def test_forests_equal_forest_scan(self, forest, num_chunks, seed):
        nxt, values, heads = forest
        expect = forest_list_scan(nxt, values, heads, rng=seed)
        got = sharded_forest_scan(
            nxt,
            values,
            heads,
            config=DistributedConfig(num_chunks=num_chunks),
            rng=seed,
        )
        assert np.array_equal(got, expect)


class TestExecutorMatrix:
    """Same property on the pooled executors — fewer examples, shared
    pools (these cross thread/process boundaries per example)."""

    @pytest.fixture(scope="class")
    def threads_backend(self):
        backend = create_backend("threads", 2)
        yield backend
        backend.close()

    @pytest.fixture(scope="class")
    def process_backend(self):
        backend = create_backend("processes", 2)
        yield backend
        backend.close()

    @settings(max_examples=20, **COMMON)
    @given(
        lst=linked_lists(max_n=200),
        num_chunks=st.integers(min_value=1, max_value=6),
        seed=st.integers(0, 1000),
    )
    def test_threads_equals_sublist(self, threads_backend, lst, num_chunks, seed):
        expect = sublist_list_scan(lst, rng=seed)
        got = sharded_list_scan(
            lst,
            config=DistributedConfig(num_chunks=num_chunks),
            backend=threads_backend,
            rng=seed,
        )
        assert np.array_equal(got, expect)

    @settings(max_examples=10, **COMMON)
    @given(
        lst=linked_lists(max_n=200),
        num_chunks=st.integers(min_value=1, max_value=6),
        seed=st.integers(0, 1000),
    )
    def test_processes_equals_sublist(self, process_backend, lst, num_chunks, seed):
        expect = sublist_list_scan(lst, rng=seed)
        got = sharded_list_scan(
            lst,
            config=DistributedConfig(num_chunks=num_chunks),
            backend=process_backend,
            rng=seed,
        )
        assert np.array_equal(got, expect)
