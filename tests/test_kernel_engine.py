"""Engine-level golden tests for the pluggable kernel backends.

Two contracts:

* **equivalence** — for every ``executor`` × ``kernel_backend``
  combination the engine returns exactly what the dispatch API
  produces (bit-identical for integer operators, tolerance-equal for
  float/AFFINE, per docs/kernels.md);
* **routing neutrality** — the reference backends (``numpy``,
  ``python``) carry calibration factors of 1.0, so forcing them
  changes *no* routing decision relative to the default router.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.serial import serial_list_scan
from repro.core.operators import AFFINE, SUM, XOR, Operator
from repro.engine import Engine
from repro.engine.router import CANDIDATES, Router
from repro.engine.workers import offloadable_operator, shippable_operator
from repro.kernels import PairSpec, register_pair
from repro.kernels.backend import NumbaBackend
from repro.kernels.pairs import OP_ADD, _PAIR_REGISTRY, pair_for
from repro.lists.generate import random_list

from .conftest import make_affine_values

BACKENDS = ("numpy", "python")
EXECUTORS = ("sync", "threads", "processes")


def int_batch(seed=0, count=8, max_n=5000):
    rng = np.random.default_rng(seed)
    sizes = np.linspace(10, max_n, count).astype(int)
    return [
        random_list(int(n), rng, values=rng.integers(-50, 50, int(n)))
        for n in sizes
    ]


def affine_batch(seed=0, count=6, max_n=5000):
    rng = np.random.default_rng(seed)
    sizes = np.linspace(10, max_n, count).astype(int)
    return [
        random_list(
            int(n),
            rng,
            values=np.stack(
                [rng.uniform(0.5, 1.5, int(n)), rng.uniform(-1, 1, int(n))],
                axis=1,
            ),
        )
        for n in sizes
    ]


class TestGoldenAcrossExecutors:
    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("op", [SUM, XOR])
    def test_int_bit_identical(self, executor, backend, op):
        lists = int_batch(seed=5)
        with Engine(
            executor=executor, kernel_backend=backend, cache_capacity=0, seed=0
        ) as engine:
            assert engine.kernel_backend == backend
            results = engine.map_scan(lists, op)
        for lst, got in zip(lists, results):
            np.testing.assert_array_equal(got, serial_list_scan(lst, op))

    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_affine_tolerance(self, executor, backend):
        lists = affine_batch(seed=9)
        with Engine(
            executor=executor, kernel_backend=backend, cache_capacity=0, seed=0
        ) as engine:
            results = engine.map_scan(lists, AFFINE)
        for lst, got in zip(lists, results):
            np.testing.assert_allclose(
                got, serial_list_scan(lst, AFFINE), rtol=1e-9, atol=1e-12
            )

    def test_backends_agree_elementwise(self):
        # same batch through both backends: int results bit-identical
        lists = int_batch(seed=13)
        per_backend = {}
        for backend in BACKENDS:
            with Engine(
                executor="sync", kernel_backend=backend, cache_capacity=0
            ) as engine:
                per_backend[backend] = engine.map_scan(lists, SUM)
        for a, b in zip(per_backend["numpy"], per_backend["python"]):
            np.testing.assert_array_equal(a, b)


class TestRoutingNeutrality:
    """Reference backends must not perturb routing decisions."""

    SIZES = (1, 64, 512, 2048, 10_000, 1 << 16, 1 << 20)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_forced_reference_backend_routes_identically(self, backend):
        default = Router()
        forced = Router(kernel_backend=backend)
        for n in self.SIZES:
            assert forced.choose(n) == default.choose(n)
            for alg in CANDIDATES:
                assert forced.predicted_clocks(n, alg) == pytest.approx(
                    default.predicted_clocks(n, alg)
                )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_engine_router_decisions_unchanged(self, backend):
        default = Engine()
        forced = Engine(kernel_backend=backend)
        for n in self.SIZES:
            assert forced.router.choose(n) == default.router.choose(n)

    def test_compiled_backend_scales_coefficients(self):
        # the numba calibration lowers the per-element rank/pack slopes;
        # scaled_costs is pure arithmetic, so it is testable without numba
        from repro.analysis.cost_model import PAPER_C90_COSTS

        scaled = NumbaBackend().scaled_costs(PAPER_C90_COSTS)
        assert scaled.initial_rank_per_elem == pytest.approx(
            PAPER_C90_COSTS.initial_rank_per_elem * 0.25
        )
        assert scaled.final_pack_per_elem == pytest.approx(
            PAPER_C90_COSTS.final_pack_per_elem * 0.25
        )


class TestShippableOperator:
    def test_builtin_ships_by_name(self):
        assert shippable_operator(SUM) == ("sum", None, None)
        assert offloadable_operator(SUM)

    def test_affine_ships_by_name(self):
        assert shippable_operator(AFFINE) == ("affine", None, None)

    def test_registered_pair_op_ships_as_opcodes(self):
        op = Operator(name="ship_me", combine=np.add, identity=0)
        register_pair(op, PairSpec(width=1, companion=OP_ADD))
        try:
            name, pair, identity = shippable_operator(op)
            assert name == "ship_me"
            assert pair == (1, OP_ADD, -1, -1)
            assert identity == 0
            assert offloadable_operator(op)
        finally:
            _PAIR_REGISTRY.pop("ship_me", None)

    def test_unregistered_op_not_shippable(self):
        op = Operator(name="opaque", combine=np.add, identity=0)
        assert shippable_operator(op) is None
        assert not offloadable_operator(op)

    def test_non_plain_identity_not_shippable(self):
        op = Operator(
            name="weird_id", combine=np.add, identity=np.zeros(2)
        )
        register_pair(op, PairSpec(width=1, companion=OP_ADD))
        try:
            assert shippable_operator(op) is None
        finally:
            _PAIR_REGISTRY.pop("weird_id", None)


class TestWorkerBackendDegradation:
    def test_unknown_backend_degrades_to_numpy(self, rng):
        # a worker whose environment lacks the parent's backend (e.g.
        # parent auto-detected numba) must degrade to numpy, not fail
        from repro.engine.workers import ProcessBackend

        n = 2000
        lst = random_list(n, rng, values=rng.integers(-9, 9, n))
        heads = np.array([lst.head], dtype=lst.next.dtype)
        backend = ProcessBackend(max_workers=1)
        try:
            out, _, _ = backend.run_fused(
                lst.next,
                lst.values,
                heads,
                "sum",
                False,
                "sublist",
                0,
                False,
                kernel_backend="numba-gpu-42",  # never a valid name
            )
        finally:
            backend.close()
        np.testing.assert_array_equal(out, serial_list_scan(lst, SUM))

    def test_custom_pair_op_offloads_to_processes(self, rng):
        # the widened gate: a *registered* non-builtin operator crosses
        # the process boundary as opcodes and comes back correct
        op = Operator(name="shiptest_add", combine=np.add, identity=0)
        register_pair(op, PairSpec(width=1, companion=OP_ADD))
        try:
            assert pair_for(op) is not None
            lists = int_batch(seed=21, count=4, max_n=4000)
            with Engine(
                executor="processes", cache_capacity=0, seed=0
            ) as engine:
                results = engine.map_scan(lists, op)
                offloaded = engine._backend.tasks_offloaded
            assert offloaded > 0, "pair-registered operator never offloaded"
            for lst, got in zip(lists, results):
                np.testing.assert_array_equal(
                    got, serial_list_scan(lst, op)
                )
        finally:
            _PAIR_REGISTRY.pop("shiptest_add", None)
