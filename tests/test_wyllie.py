"""Unit tests for Wyllie's pointer-jumping algorithm."""

import numpy as np
import pytest

from repro.baselines.serial import serial_list_scan
from repro.baselines.wyllie import (
    build_predecessors,
    wyllie_list_rank,
    wyllie_list_scan,
    wyllie_prefix,
    wyllie_rounds,
    wyllie_suffix,
)
from repro.core.operators import AFFINE, MAX, SUM, XOR
from repro.core.stats import ScanStats
from repro.lists.generate import (
    from_order,
    ordered_list,
    random_list,
    reversed_list,
)
from .conftest import make_affine_values

SIZES = [1, 2, 3, 4, 5, 7, 8, 9, 16, 100, 1023, 1024, 1025]


class TestRounds:
    def test_small_cases(self):
        assert wyllie_rounds(1) == 0
        assert wyllie_rounds(2) == 0
        assert wyllie_rounds(3) == 1
        assert wyllie_rounds(5) == 2
        assert wyllie_rounds(9) == 3

    def test_power_of_two_boundaries(self):
        # window 2^k must reach n−1
        assert wyllie_rounds(1025) == 10
        assert wyllie_rounds(1026) == 11

    def test_monotone(self):
        rounds = [wyllie_rounds(n) for n in range(1, 200)]
        assert all(a <= b for a, b in zip(rounds, rounds[1:]))


class TestPredecessors:
    def test_ordered(self):
        pred = build_predecessors(ordered_list(5))
        assert np.array_equal(pred, [0, 0, 1, 2, 3])

    def test_head_self_loop(self, rng):
        lst = random_list(50, rng)
        pred = build_predecessors(lst)
        assert pred[lst.head] == lst.head

    def test_inverse_of_next(self, rng):
        lst = random_list(50, rng)
        pred = build_predecessors(lst)
        idx = np.arange(50)
        proper = lst.next != idx
        assert np.array_equal(pred[lst.next[proper]], idx[proper])


class TestAgainstSerial:
    @pytest.mark.parametrize("n", SIZES)
    def test_suffix_random(self, n, rng):
        lst = random_list(n, rng, values=rng.integers(-9, 9, n))
        assert np.array_equal(wyllie_suffix(lst), serial_list_scan(lst))

    @pytest.mark.parametrize("n", SIZES)
    def test_prefix_random(self, n, rng):
        lst = random_list(n, rng, values=rng.integers(-9, 9, n))
        assert np.array_equal(wyllie_prefix(lst), serial_list_scan(lst))

    @pytest.mark.parametrize("layout", [ordered_list, reversed_list])
    def test_layouts(self, layout, rng):
        lst = layout(257, values=rng.integers(-9, 9, 257))
        assert np.array_equal(wyllie_suffix(lst), serial_list_scan(lst))

    @pytest.mark.parametrize("n", [2, 17, 300])
    def test_inclusive(self, n, rng):
        lst = random_list(n, rng, values=rng.integers(-9, 9, n))
        expect = serial_list_scan(lst, inclusive=True)
        assert np.array_equal(wyllie_suffix(lst, inclusive=True), expect)
        assert np.array_equal(wyllie_prefix(lst, inclusive=True), expect)

    def test_xor(self, rng):
        lst = random_list(100, rng, values=rng.integers(0, 1 << 20, 100))
        assert np.array_equal(
            wyllie_suffix(lst, XOR), serial_list_scan(lst, XOR)
        )

    def test_max_via_prefix(self, rng):
        lst = random_list(100, rng, values=rng.integers(-99, 99, 100))
        assert np.array_equal(
            wyllie_prefix(lst, MAX), serial_list_scan(lst, MAX)
        )

    def test_affine_via_prefix(self, rng):
        n = 77
        lst = from_order(rng.permutation(n), make_affine_values(rng, n))
        assert np.array_equal(
            wyllie_prefix(lst, AFFINE), serial_list_scan(lst, AFFINE)
        )

    def test_does_not_modify_input(self, small_list):
        before = small_list.next.copy()
        wyllie_suffix(small_list)
        wyllie_prefix(small_list)
        assert np.array_equal(small_list.next, before)


class TestDispatch:
    def test_auto_picks_suffix_for_sum(self, small_list):
        got = wyllie_list_scan(small_list, SUM, variant="auto")
        assert np.array_equal(got, serial_list_scan(small_list))

    def test_auto_picks_prefix_for_max(self, small_list):
        got = wyllie_list_scan(small_list, MAX, variant="auto")
        assert np.array_equal(got, serial_list_scan(small_list, MAX))

    def test_suffix_rejects_non_invertible(self, small_list):
        with pytest.raises(ValueError, match="invertible"):
            wyllie_suffix(small_list, MAX)

    def test_unknown_variant(self, small_list):
        with pytest.raises(ValueError, match="variant"):
            wyllie_list_scan(small_list, variant="bogus")

    def test_rank(self, rng):
        lst = random_list(300, rng)
        assert sorted(wyllie_list_rank(lst)) == list(range(300))
        assert wyllie_list_rank(lst)[lst.head] == 0


class TestStats:
    def test_work_is_n_log_n(self, rng):
        n = 1024
        lst = random_list(n, rng)
        stats = ScanStats()
        wyllie_suffix(lst, stats=stats)
        assert stats.rounds == wyllie_rounds(n)
        assert stats.element_ops == stats.rounds * n

    def test_space_accounting(self, rng):
        n = 128
        stats = ScanStats()
        wyllie_suffix(random_list(n, rng), stats=stats)
        assert stats.peak_aux_words == 2 * n

    def test_prefix_space_higher(self, rng):
        n = 128
        s1, s2 = ScanStats(), ScanStats()
        wyllie_suffix(random_list(n, rng), stats=s1)
        wyllie_prefix(random_list(n, rng), stats=s2)
        assert s2.peak_aux_words > s1.peak_aux_words
