"""Engine-level tracing and the kernel-stats double-count regression.

The traced serving path must expose the whole lifecycle as a span
tree — ``run_batch`` → ``admit`` / ``shard`` / ``respond``, with
``route``/``cache_hit``/``coalesced``/``queue_wait`` events and
``quarantine_retry``/``solo`` spans where the batch took those paths —
without changing any result.

The regression half pins the per-attempt kernel-stats contract: a
fused execution that raises discards its partial ``ScanStats``; the
quarantine solo re-runs collect from zero, so the engine's
``element_ops`` / ``kernel_rounds`` / ``kernel_packs`` counters match
an engine that only ever served the healthy requests.
"""

import numpy as np
import pytest

from repro.engine import Engine, ScanRequest
from repro.lists.generate import random_list, random_values
from repro.trace import Tracer, counting_clock

from .test_engine_faults import POISON, SENTINEL, corrupt_list, healthy_list


def _batch(count, n, seed0=0):
    return [ScanRequest(lst=healthy_list(n, seed0 + k)) for k in range(count)]


class TestEngineSpans:
    @pytest.mark.parametrize("parallel", [False, True])
    def test_batch_span_tree(self, parallel):
        tracer = Tracer(clock=counting_clock())
        engine = Engine(trace=tracer, max_workers=4)
        reqs = _batch(3, 3000) + _batch(2, 40, seed0=10)  # two size classes
        responses = engine.run_batch(reqs, parallel=parallel)
        assert all(r.ok for r in responses)

        root = tracer.last_root()
        assert root.name == "run_batch"
        assert root.attrs == {"requests": 5, "parallel": parallel}
        child_names = [c.name for c in root.children]
        assert child_names[0] == "admit"
        assert child_names[-1] == "respond"
        shards = root.find_all("shard")
        assert len(shards) == 2  # thread-pool shards pinned via parent=
        for shard in shards:
            assert shard.t1 is not None
            assert shard.find("execute") is not None or shard.find("solo") is not None
        # every span closed, even under the pool driver
        for span in root.walk():
            assert span.t1 is not None, span.name

    def test_route_event_carries_cost_model_prediction(self):
        tracer = Tracer()
        engine = Engine(trace=tracer)
        engine.run_batch(_batch(3, 2000))
        (shard,) = tracer.last_root().find_all("shard")
        (route,) = shard.events_named("route")
        assert route.attrs["algorithm"] in ("serial", "wyllie", "sublist")
        assert route.attrs["forced"] is False
        assert route.attrs["n_lists"] == 3
        if engine.router.calibrated:
            assert set(route.attrs["predicted_clocks"]) == set(
                engine.router.candidates
            )
            assert all(
                v > 0 for v in route.attrs["predicted_clocks"].values()
            )

    def test_queue_wait_events_from_submission_path(self):
        tracer = Tracer()
        engine = Engine(trace=tracer)
        ids = [engine.submit(healthy_list(500, seed)) for seed in range(3)]
        responses = engine.flush()
        assert [r.request_id for r in responses] == ids
        waits = tracer.last_root().find("admit").events_named("queue_wait")
        assert len(waits) == 3
        assert {e.attrs["request_id"] for e in waits} == set(ids)
        assert all(e.attrs["seconds"] >= 0.0 for e in waits)

    def test_direct_run_batch_records_no_queue_wait(self):
        tracer = Tracer()
        Engine(trace=tracer).run_batch(_batch(2, 300))
        assert tracer.last_root().find("admit").events_named("queue_wait") == []

    def test_cache_and_coalescing_events(self):
        tracer = Tracer()
        engine = Engine(trace=tracer)
        lst = healthy_list(400, 1)
        [first, dup] = engine.run_batch(
            [ScanRequest(lst=lst), ScanRequest(lst=lst.copy())]
        )
        admit = tracer.last_root().find("admit")
        (coalesced,) = admit.events_named("coalesced")
        assert coalesced.attrs == {
            "request_id": dup.request_id,
            "primary": first.request_id,
        }
        [again] = engine.run_batch([ScanRequest(lst=lst.copy())])
        assert again.cached
        admit2 = tracer.last_root().find("admit")
        assert len(admit2.events_named("cache_hit")) == 1
        assert admit2.events_named("cache_miss") == []

    def test_validation_error_event(self):
        tracer = Tracer()
        [resp] = Engine(trace=tracer).run_batch(
            [ScanRequest(lst=corrupt_list(64, 3))]
        )
        assert not resp.ok
        (ev,) = tracer.last_root().find("admit").events_named("validation_error")
        assert ev.attrs == {"request_id": resp.request_id, "code": "bad-structure"}

    def test_quarantine_retry_span(self):
        a, b, c = (healthy_list(100, s) for s in (1, 2, 3))
        b.values = np.arange(100, dtype=np.int64)
        b.values[57] = SENTINEL
        tracer = Tracer()
        engine = Engine(trace=tracer)
        responses = engine.run_batch(
            [ScanRequest(lst=x, op=POISON) for x in (a, b, c)]
        )
        assert [r.ok for r in responses] == [True, False, True]
        (shard,) = tracer.last_root().find_all("shard")
        retry = shard.find("quarantine_retry")
        assert retry is not None
        assert retry.attrs == {"lists": 3}
        solos = retry.find_all("solo")
        assert len(solos) == 3  # every member re-ran solo
        assert engine.stats.retries == 1 and engine.stats.quarantined == 1

    def test_trace_off_engine_records_nothing_and_matches(self):
        lists = [healthy_list(600, s) for s in range(4)]
        plain = Engine(seed=0).map_scan(lists, "sum")
        off_engine = Engine(seed=0, trace="off")
        off = off_engine.map_scan(lists, "sum")
        for got, ref in zip(off, plain):
            np.testing.assert_array_equal(got, ref)
        assert off_engine.trace.roots == []

    def test_traced_engine_matches_untraced_results(self):
        lists = [healthy_list(700, 20 + s) for s in range(5)]
        plain = Engine(seed=0).map_scan(lists, "sum")
        traced = Engine(seed=0, trace=Tracer()).map_scan(lists, "sum")
        for got, ref in zip(traced, plain):
            np.testing.assert_array_equal(got, ref)


class TestKernelStatsAccounting:
    """Satellite regression: failed attempts must not leak kernel work."""

    def _healthy_pair(self):
        rng_a = np.random.default_rng(5)
        rng_c = np.random.default_rng(6)
        a = random_list(300, rng_a, values=random_values(300, rng_a))
        c = random_list(300, rng_c, values=random_values(300, rng_c))
        return a, c

    def _poisoned(self):
        lst = random_list(300, 7, values=np.arange(300, dtype=np.int64))
        lst.values[150] = SENTINEL
        return lst

    def test_kernel_counters_populated_on_success(self):
        engine = Engine()
        engine.run_batch(_batch(3, 1500))
        assert engine.stats.element_ops > 0
        rows = dict((k, v) for k, v in engine.stats.as_rows())
        assert rows["element ops"] == engine.stats.element_ops
        assert "kernel rounds" in rows and "kernel packs" in rows

    def test_failed_fused_attempt_discards_partial_kernel_stats(self):
        # wyllie accumulates ScanStats round by round, so the fused
        # attempt has already counted real work when POISON raises
        # mid-kernel; pre-fix that partial work stayed in the engine
        # counters *and* the solo re-runs added their own full runs.
        a, c = self._healthy_pair()
        b = self._poisoned()

        engine = Engine()
        responses = engine.run_batch(
            [
                ScanRequest(lst=x, op=POISON, algorithm="wyllie")
                for x in (a, b, c)
            ]
        )
        assert [r.ok for r in responses] == [True, False, True]
        assert engine.stats.retries == 1  # the fused attempt did run (and fail)

        control = Engine()
        for lst in (a, c):
            [resp] = control.run_batch(
                [ScanRequest(lst=lst, op=POISON, algorithm="wyllie")]
            )
            assert resp.ok

        assert control.stats.element_ops > 0
        assert engine.stats.element_ops == control.stats.element_ops
        assert engine.stats.kernel_rounds == control.stats.kernel_rounds
        assert engine.stats.kernel_packs == control.stats.kernel_packs

    def test_failed_solo_rerun_contributes_nothing(self):
        # a singleton shard: the fused attempt *is* the solo run; its
        # partial counters must vanish with the exception
        engine = Engine()
        [resp] = engine.run_batch(
            [ScanRequest(lst=self._poisoned(), op=POISON, algorithm="wyllie")]
        )
        assert not resp.ok
        assert engine.stats.element_ops == 0
        assert engine.stats.kernel_rounds == 0
        assert engine.stats.kernel_packs == 0
