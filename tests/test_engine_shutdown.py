"""Engine/queue shutdown semantics.

``Engine.close()`` must leave no request in limbo: everything still
queued comes back as a structured ``shutdown`` failure, submitters
blocked on backpressure wake up with :class:`QueueClosedError`, and
the whole sequence is idempotent.  These are the guarantees the
serving front-end's graceful shutdown is built on.
"""

import threading

import numpy as np
import pytest

from repro.engine import Engine, QueueClosedError, ScanRequest
from repro.engine.queue import SubmissionQueue
from repro.lists.generate import random_list, random_values


def make_request(n, seed, tag=None):
    rng = np.random.default_rng(seed)
    lst = random_list(n, rng, values=random_values(n, rng))
    return ScanRequest(lst=lst, op="sum", tag=tag)


def test_close_fails_pending_requests_with_shutdown_error():
    engine = Engine(executor="sync")
    ids = [engine.queue.submit(make_request(32, s, tag=s)) for s in range(5)]
    responses = engine.close()
    assert [r.request_id for r in responses] == ids
    for resp in responses:
        assert not resp.ok
        assert resp.result is None
        assert resp.error is not None
        assert resp.error.code == "shutdown"
        assert resp.error.phase == "shutdown"
    assert len(engine.queue) == 0
    assert engine.stats.errors == 5


def test_close_wakes_blocked_submitter_thread():
    engine = Engine(executor="sync", max_pending=1)
    engine.queue.submit(make_request(16, 0))  # fills the queue

    outcome = {}
    started = threading.Event()

    def blocked_submit():
        started.set()
        try:
            engine.queue.submit(make_request(16, 1), block=True)
            outcome["result"] = "submitted"
        except QueueClosedError:
            outcome["result"] = "closed"
        except Exception as exc:  # pragma: no cover - diagnostic
            outcome["result"] = repr(exc)

    thread = threading.Thread(target=blocked_submit)
    thread.start()
    assert started.wait(5.0)
    # give the submitter time to actually block on the condition
    assert thread.is_alive()
    responses = engine.close()
    thread.join(timeout=5.0)
    assert not thread.is_alive(), "blocked submitter never woke up"
    assert outcome["result"] == "closed"
    # only the first (queued) request gets a shutdown response
    assert len(responses) == 1
    assert responses[0].error.code == "shutdown"


def test_submit_after_close_raises():
    engine = Engine(executor="sync")
    engine.close()
    with pytest.raises(QueueClosedError):
        engine.queue.submit(make_request(8, 0))


def test_close_is_idempotent():
    engine = Engine(executor="sync")
    engine.queue.submit(make_request(8, 0))
    first = engine.close()
    assert len(first) == 1
    assert engine.close() == []


def test_queue_close_returns_pending_and_marks_closed():
    queue = SubmissionQueue(max_requests=None)
    req = make_request(8, 0)
    queue.submit(req)
    assert not queue.closed
    pending = queue.close()
    assert pending == [req]
    assert queue.closed
    assert len(queue) == 0
    assert queue.close() == []  # idempotent


def test_oldest_submitted_at_tracks_queue_head():
    ticks = iter(range(100))
    queue = SubmissionQueue(clock=lambda: float(next(ticks)))
    assert queue.oldest_submitted_at() is None
    queue.submit(make_request(8, 0))
    queue.submit(make_request(8, 1))
    first = queue.oldest_submitted_at()
    assert first is not None
    queue.drain(1)
    assert queue.oldest_submitted_at() > first
    queue.drain()
    assert queue.oldest_submitted_at() is None


def test_context_manager_close_still_works_after_run():
    with Engine(executor="sync") as engine:
        resp = engine.run_batch([make_request(64, 7)])[0]
        assert resp.ok
    # exiting the context closed the engine; submissions now fail
    with pytest.raises(QueueClosedError):
        engine.queue.submit(make_request(8, 1))
