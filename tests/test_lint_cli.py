"""End-to-end tests for ``repro-c90 lint``: exit codes, reporters,
rule selection, and the bad-fixture corpus gate.

The corpus test is the same self-check CI runs: the analyzer must exit
non-zero on ``tests/fixtures/lint_bad`` with every rule in the
catalog represented, and exit zero on the project's own ``src`` tree.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import rule_names

FIXTURES = Path(__file__).parent / "fixtures" / "lint_bad"
SRC = Path(__file__).parent.parent / "src"


def lint(capsys, *argv):
    code = main(["lint", *argv])
    return code, capsys.readouterr()


def test_src_tree_is_clean(capsys):
    code, cap = lint(capsys, str(SRC))
    assert code == 0, cap.out
    assert "no findings" in cap.out


def test_bad_fixture_corpus_fails(capsys):
    code, cap = lint(capsys, str(FIXTURES))
    assert code == 1
    assert "finding(s)" in cap.out


def test_every_rule_catches_its_fixture(capsys):
    code, cap = lint(capsys, "--json", str(FIXTURES))
    assert code == 1
    payload = json.loads(cap.out)
    assert not payload["clean"]
    flagged = {d["rule"] for d in payload["diagnostics"]}
    assert flagged == set(rule_names()), (
        "every rule must catch its bad fixture"
    )


def test_json_report_shape(capsys):
    code, cap = lint(capsys, "--json", str(FIXTURES / "bare_acquire.py"))
    assert code == 1
    payload = json.loads(cap.out)
    assert payload["files"] == 1
    assert payload["findings"] == len(payload["diagnostics"])
    diag = payload["diagnostics"][0]
    assert {"path", "line", "col", "rule", "message", "hint"} <= set(diag)


def test_single_clean_file_exits_zero(capsys, tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n", encoding="utf-8")
    code, cap = lint(capsys, str(clean))
    assert code == 0
    assert "no findings" in cap.out


def test_rule_selection_limits_findings(capsys):
    code, cap = lint(capsys, "--rules", "no-fork", "--json", str(FIXTURES))
    assert code == 1
    payload = json.loads(cap.out)
    assert {d["rule"] for d in payload["diagnostics"]} == {"no-fork"}
    assert payload["rules"] == ["no-fork"]


def test_unknown_rule_is_usage_error(capsys):
    code, cap = lint(capsys, "--rules", "made-up", str(FIXTURES))
    assert code == 2
    assert "unknown rule" in cap.err


def test_missing_path_is_usage_error(capsys):
    code, cap = lint(capsys, "definitely/not/a/path")
    assert code == 2
    assert "does not exist" in cap.err


def test_list_rules(capsys):
    code, cap = lint(capsys, "--list-rules")
    assert code == 0
    for name in rule_names():
        assert name in cap.out


def test_human_report_carries_hints(capsys):
    code, cap = lint(capsys, str(FIXTURES / "core" / "implicit_dtype.py"))
    assert code == 1
    assert "hint:" in cap.out


def test_unused_suppression_toggle(capsys, tmp_path):
    marked = tmp_path / "marked.py"
    marked.write_text(
        "x = 1  # repolint: disable=no-fork\n", encoding="utf-8"
    )
    code, cap = lint(capsys, str(marked))
    assert code == 1
    assert "unused-suppression" in cap.out
    code, cap = lint(capsys, "--no-unused-suppressions", str(marked))
    assert code == 0
