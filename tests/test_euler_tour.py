"""Tests for the Euler-tour application."""

import numpy as np
import pytest

from repro.apps.euler_tour import (
    build_euler_tour,
    random_parent_tree,
    tree_measures,
)
from repro.lists.validate import validate_list_strict


def reference_measures(parent: np.ndarray, root: int = 0) -> dict:
    """Direct DFS oracle for depth / preorder / postorder / sizes."""
    n = parent.shape[0]
    children = [[] for _ in range(n)]
    for v in range(n):
        if v != root:
            children[parent[v]].append(v)
    depth = np.zeros(n, dtype=np.int64)
    preorder = np.zeros(n, dtype=np.int64)
    postorder = np.zeros(n, dtype=np.int64)
    size = np.ones(n, dtype=np.int64)
    pre_counter = [0]
    post_counter = [0]
    stack = [(root, False)]
    while stack:
        v, done = stack.pop()
        if done:
            postorder[v] = post_counter[0]
            post_counter[0] += 1
            for c in children[v]:
                size[v] += size[c]
            continue
        preorder[v] = pre_counter[0]
        pre_counter[0] += 1
        stack.append((v, True))
        for c in reversed(children[v]):
            depth[c] = depth[v] + 1
            stack.append((c, False))
    return {
        "depth": depth,
        "preorder": preorder,
        "postorder": postorder,
        "subtree_size": size,
    }


def chain_tree(n):
    parent = np.arange(-1, n - 1, dtype=np.int64)
    parent[0] = 0
    return parent


def star_tree(n):
    return np.zeros(n, dtype=np.int64)


class TestBuildEulerTour:
    def test_tour_is_valid_list(self, rng):
        parent = random_parent_tree(200, rng)
        et = build_euler_tour(parent)
        validate_list_strict(et.tour)

    def test_tour_length(self, rng):
        parent = random_parent_tree(50, rng)
        et = build_euler_tour(parent)
        assert et.tour.n == 2 * 49

    def test_dart_endpoints(self, rng):
        parent = random_parent_tree(50, rng)
        et = build_euler_tour(parent)
        # twin darts reverse each other
        assert np.array_equal(et.dart_from[0::2], et.dart_to[1::2])
        assert np.array_equal(et.dart_to[0::2], et.dart_from[1::2])

    def test_tour_is_connected_walk(self, rng):
        """Consecutive darts share the intermediate vertex."""
        from repro.lists.generate import list_order

        parent = random_parent_tree(40, rng)
        et = build_euler_tour(parent)
        order = list_order(et.tour)
        for a, b in zip(order[:-1], order[1:]):
            assert et.dart_to[a] == et.dart_from[b]

    def test_starts_and_ends_at_root(self, rng):
        from repro.lists.generate import list_order

        parent = random_parent_tree(40, rng)
        et = build_euler_tour(parent)
        order = list_order(et.tour)
        assert et.dart_from[order[0]] == et.root
        assert et.dart_to[order[-1]] == et.root

    def test_rejects_tiny_tree(self):
        with pytest.raises(ValueError):
            build_euler_tour(np.array([0]))

    def test_rejects_bad_root(self):
        with pytest.raises(ValueError, match="root"):
            build_euler_tour(np.array([1, 0]), root=0)


class TestTreeMeasures:
    @pytest.mark.parametrize("n", [2, 3, 10, 200, 1500])
    def test_random_trees_match_dfs(self, n, rng):
        parent = random_parent_tree(n, rng)
        got = tree_measures(parent, rng=rng)
        ref = reference_measures(parent)
        assert np.array_equal(got["depth"], ref["depth"])
        assert np.array_equal(got["subtree_size"], ref["subtree_size"])
        # our preorder numbers count entry order, same as DFS when the
        # rotation system lists children in index order
        assert np.array_equal(got["preorder"], ref["preorder"])
        assert np.array_equal(got["postorder"], ref["postorder"])

    def test_chain(self):
        parent = chain_tree(100)
        got = tree_measures(parent)
        assert np.array_equal(got["depth"], np.arange(100))
        assert np.array_equal(got["subtree_size"], np.arange(100, 0, -1))

    def test_star(self):
        got = tree_measures(star_tree(64))
        assert got["depth"][0] == 0
        assert np.all(got["depth"][1:] == 1)
        assert got["subtree_size"][0] == 64
        assert np.all(got["subtree_size"][1:] == 1)

    def test_singleton(self):
        got = tree_measures(np.array([0]))
        assert got["depth"][0] == 0
        assert got["subtree_size"][0] == 1

    @pytest.mark.parametrize("algorithm", ["serial", "wyllie", "sublist"])
    def test_algorithm_independence(self, algorithm, rng):
        parent = random_parent_tree(300, rng)
        got = tree_measures(parent, algorithm=algorithm, rng=rng)
        ref = reference_measures(parent)
        assert np.array_equal(got["depth"], ref["depth"])
        assert np.array_equal(got["subtree_size"], ref["subtree_size"])
