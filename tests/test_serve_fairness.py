"""Per-client fairness unit tests (pure logic, injected time)."""

import pytest

from repro.serve.fairness import ClientGovernor, TokenBucket


# ----------------------------------------------------------------------
# token bucket
# ----------------------------------------------------------------------


def test_bucket_starts_full_and_drains():
    bucket = TokenBucket(rate=10.0, burst=3.0)
    assert bucket.try_take(0.0) == 0.0
    assert bucket.try_take(0.0) == 0.0
    assert bucket.try_take(0.0) == 0.0
    wait = bucket.try_take(0.0)
    assert wait == pytest.approx(0.1)  # one token at 10/s


def test_bucket_refills_at_rate():
    bucket = TokenBucket(rate=10.0, burst=2.0)
    assert bucket.try_take(0.0) == 0.0
    assert bucket.try_take(0.0) == 0.0
    assert bucket.try_take(0.05) > 0.0  # only half a token back
    assert bucket.try_take(0.2) == 0.0  # refilled


def test_bucket_caps_at_burst():
    bucket = TokenBucket(rate=100.0, burst=2.0)
    bucket.try_take(0.0)
    # a long idle period cannot bank more than `burst` tokens
    assert bucket.try_take(1000.0) == 0.0
    assert bucket.try_take(1000.0) == 0.0
    assert bucket.try_take(1000.0) > 0.0


def test_bucket_rejects_bad_parameters():
    with pytest.raises(ValueError):
        TokenBucket(rate=0.0, burst=2.0)
    with pytest.raises(ValueError):
        TokenBucket(rate=1.0, burst=0.5)


# ----------------------------------------------------------------------
# governor
# ----------------------------------------------------------------------


def test_unlimited_governor_admits_everything():
    gov = ClientGovernor()
    assert all(gov.admit("a", float(t)) is None for t in range(1000))
    assert gov.admitted == 1000
    assert gov.rejected == 0


def test_rate_limit_rejects_with_retry_after():
    gov = ClientGovernor(rate=10.0, burst=2.0)
    assert gov.admit("a", 0.0) is None
    assert gov.admit("a", 0.0) is None
    code, retry_after = gov.admit("a", 0.0)
    assert code == "rate-limited"
    assert retry_after == pytest.approx(0.1)
    # an unrelated client has its own bucket
    assert gov.admit("b", 0.0) is None


def test_inflight_cap_clears_on_settle():
    gov = ClientGovernor(max_inflight=2)
    assert gov.admit("a", 0.0) is None
    assert gov.admit("a", 0.0) is None
    code, retry_after = gov.admit("a", 0.0)
    assert code == "rate-limited"
    assert retry_after is None  # no refill estimate for the cap
    gov.settle("a")
    assert gov.inflight("a") == 1
    assert gov.admit("a", 0.0) is None


def test_greedy_client_cannot_starve_polite_client():
    gov = ClientGovernor(rate=100.0, burst=5.0, max_inflight=8)
    greedy_rejections = 0
    for i in range(50):  # a burst at t=0 blows through the bucket
        if gov.admit("greedy", 0.0) is not None:
            greedy_rejections += 1
    assert greedy_rejections == 45
    # the polite client is untouched by the greedy client's bucket
    for t in range(5):
        assert gov.admit("polite", float(t)) is None
        gov.settle("polite")


def test_forget_drops_only_idle_state():
    gov = ClientGovernor(max_inflight=4)
    gov.admit("busy", 0.0)
    gov.admit("idle", 0.0)
    gov.settle("idle")
    gov.forget("busy")  # still in flight: kept
    gov.forget("idle")  # idle: dropped
    assert gov.snapshot()["clients"] == 1
    assert gov.inflight("busy") == 1


def test_snapshot_is_json_safe():
    import json

    gov = ClientGovernor(rate=10.0, burst=4.0, max_inflight=2)
    gov.admit("a", 0.0)
    gov.admit("a", 0.0)
    gov.admit("a", 0.0)  # rejected by the cap
    snap = gov.snapshot()
    json.dumps(snap)
    assert snap == {
        "clients": 1,
        "admitted": 2,
        "rejected": 1,
        "inflight": 2,
        "rate": 10.0,
        "burst": 4.0,
        "max_inflight": 2,
    }
