"""Unit tests for the cost-model router and the ``auto`` fallback."""

import pytest

from repro.analysis.cost_model import PAPER_C90_COSTS
from repro.core.list_scan import _AUTO_SERIAL_BELOW, _auto_algorithm, list_scan
from repro.engine.router import (
    CANDIDATES,
    DEFAULT_SERIAL_BELOW,
    Router,
    default_router,
    route_algorithm,
)
from repro.lists.generate import random_list


class TestRouterModel:
    def test_small_lists_route_serial(self):
        router = Router()
        for n in (1, 8, 64, 512):
            assert router.choose(n) == "serial"

    def test_large_lists_route_sublist(self):
        router = Router()
        for n in (1 << 15, 1 << 20):
            assert router.choose(n) == "sublist"

    def test_crossover_is_finite_and_reasonable(self):
        cross = Router().crossover()
        # the model crossover lands in the same regime as the paper's
        # Figure 1 structure (somewhere in the hundreds..ten-thousands)
        assert 100 <= cross <= 20_000

    def test_many_tiny_lists_prefer_vector_wyllie(self):
        # fused pointer jumping over k short chains finishes in
        # log2(n/k) rounds — the model should discover that it beats a
        # per-chain serial walk
        router = Router()
        assert router.choose(256, n_lists=64) == "wyllie"

    def test_predictions_match_kernel_equations(self):
        router = Router()
        assert router.predicted_clocks(1000, "serial") == pytest.approx(
            PAPER_C90_COSTS.t_serial(1000)
        )
        assert router.predicted_clocks(1024, "wyllie") == pytest.approx(
            PAPER_C90_COSTS.t_wyllie(1024)
        )

    def test_choice_minimizes_predicted_clocks(self):
        router = Router()
        for n in (100, 5000, 1 << 16):
            best = router.choose(n)
            t_best = router.predicted_clocks(n, best)
            for alg in CANDIDATES:
                assert t_best <= router.predicted_clocks(n, alg) * 1.0001

    def test_unknown_candidate_rejected(self):
        with pytest.raises(ValueError):
            Router(candidates=("serial", "quantum"))
        with pytest.raises(ValueError):
            Router().predicted_clocks(100, "quantum")


class TestFallback:
    def test_uncalibrated_router_uses_fixed_crossover(self):
        router = Router(costs=None)
        assert not router.calibrated
        assert router.choose(DEFAULT_SERIAL_BELOW - 1) == "serial"
        assert router.choose(DEFAULT_SERIAL_BELOW) == "sublist"

    def test_fallback_constant_matches_dispatch_api(self):
        assert DEFAULT_SERIAL_BELOW == _AUTO_SERIAL_BELOW

    def test_uncalibrated_predictions_unavailable(self):
        with pytest.raises(ValueError):
            Router(costs=None).predicted_clocks(100, "serial")


class TestHotSwap:
    def test_set_costs_invalidates_decision_cache(self):
        import dataclasses

        router = Router()
        n = 1 << 16
        assert router.choose(n) == "sublist"  # decision now cached
        # a table where the serial walk is essentially free must flip
        # the same (cached) bucket to serial — stale cache entries
        # surviving the swap would keep answering "sublist"
        cheap_serial = dataclasses.replace(
            PAPER_C90_COSTS, serial_per_elem=1e-6, serial_const=1e-6
        )
        router.set_costs(cheap_serial)
        assert router.choose(n) == "serial"
        # and back: the second swap restores the original decision
        router.set_costs(PAPER_C90_COSTS)
        assert router.choose(n) == "sublist"

    def test_set_costs_none_reverts_to_fixed_fallback(self):
        router = Router()
        assert router.calibrated
        router.set_costs(None)
        assert not router.calibrated
        assert router.choose(DEFAULT_SERIAL_BELOW - 1) == "serial"
        assert router.choose(DEFAULT_SERIAL_BELOW) == "sublist"
        with pytest.raises(ValueError):
            router.predicted_clocks(100, "serial")

    def test_set_costs_default_skips_backend_scaling(self):
        # fitted profiles are measured through the active backend, so
        # their table must be installed verbatim (no double scaling)
        router = Router()
        router.set_costs(PAPER_C90_COSTS)
        assert router.costs is PAPER_C90_COSTS

    def test_set_costs_swap_is_atomic_under_races(self):
        import dataclasses
        import threading

        cheap_serial = dataclasses.replace(
            PAPER_C90_COSTS, serial_per_elem=1e-6, serial_const=1e-6
        )
        router = Router()
        stop = threading.Event()

        def chooser(t):
            sizes = [1 << k for k in range(4, 20)]
            while not stop.is_set():
                for n in sizes:
                    router.choose(n, n_lists=1 + t)

        threads = [threading.Thread(target=chooser, args=(t,))
                   for t in range(4)]
        for th in threads:
            th.start()
        for _ in range(200):
            router.set_costs(cheap_serial)
            router.set_costs(PAPER_C90_COSTS)
        stop.set()
        for th in threads:
            th.join()
        # the swap bundles (costs, cache) into one reference: a stale
        # decision computed under the other table can never land in
        # the final cache.  At quiescence every cached entry must match
        # recomputation under the cache's own paired table.
        state = router._state
        assert state.costs is PAPER_C90_COSTS
        assert state.choices, "race never populated the decision cache"
        for (nb, kb), cached in state.choices.items():
            predictions = {
                alg: router._predicted(state.costs, nb, alg, kb)
                for alg in router.candidates
            }
            expected = min(predictions, key=predictions.get)
            assert cached == expected, (nb, kb)


class TestAutoWiring:
    def test_route_algorithm_uses_default_router(self):
        assert route_algorithm(64) == default_router().choose(64)

    def test_auto_algorithm_returns_dispatchable_name(self):
        for n in (2, 100, 4096, 1 << 18):
            assert _auto_algorithm(n) in ("serial", "wyllie", "sublist")

    def test_auto_extremes(self):
        assert _auto_algorithm(16) == "serial"
        assert _auto_algorithm(1 << 20) == "sublist"

    def test_auto_dispatch_still_correct(self, rng):
        from repro.baselines.serial import serial_list_scan

        for n in (50, 3000, 10_000):
            lst = random_list(n, rng)
            got = list_scan(lst, algorithm="auto", rng=rng)
            assert (got == serial_list_scan(lst)).all()
