"""Adaptive batch-window unit tests (pure logic, injected time)."""

import pytest

from repro.serve.window import AdaptiveWindow


def make_window(**kw):
    kw.setdefault("slo_p95", 0.050)
    kw.setdefault("min_window", 0.001)
    kw.setdefault("max_window", 0.016)
    kw.setdefault("flush_size", 8)
    return AdaptiveWindow(**kw)


def test_initial_window_defaults_to_max():
    assert make_window().window == 0.016
    assert make_window(initial=0.004).window == 0.004
    # initial is clamped into [min, max]
    assert make_window(initial=99.0).window == 0.016
    assert make_window(initial=1e-9).window == 0.001


def test_size_trigger_fires_at_flush_size():
    win = make_window()
    assert not win.should_flush(now=0.0, pending=7, oldest_admitted_at=0.0)
    assert win.should_flush(now=0.0, pending=8, oldest_admitted_at=0.0)


def test_deadline_trigger_fires_when_oldest_expires():
    win = make_window(initial=0.010)
    t0 = 100.0
    assert win.deadline(t0) == pytest.approx(100.010)
    assert not win.should_flush(now=100.009, pending=1, oldest_admitted_at=t0)
    assert win.should_flush(now=100.010, pending=1, oldest_admitted_at=t0)


def test_empty_queue_never_flushes():
    win = make_window()
    assert not win.should_flush(now=1e9, pending=0, oldest_admitted_at=None)


def test_overshoot_shrinks_multiplicatively():
    win = make_window(initial=0.016)
    for _ in range(20):
        win.note_latency(0.200)  # way over the 50 ms SLO
    win.adapt()
    assert win.window == pytest.approx(0.008)
    assert win.shrinks == 1
    for _ in range(8):  # keeps halving down to the floor
        win.adapt()
    assert win.window == pytest.approx(0.001)


def test_headroom_grows_gently():
    win = make_window(initial=0.004)
    for _ in range(20):
        win.note_latency(0.005)  # well under 0.7 * SLO
    win.adapt()
    assert win.window == pytest.approx(0.005)
    assert win.grows == 1
    for _ in range(50):  # growth saturates at max_window
        win.adapt()
    assert win.window == pytest.approx(0.016)


def test_in_band_latency_holds_the_window():
    win = make_window(initial=0.004)
    for _ in range(20):
        win.note_latency(0.040)  # between 0.7*SLO and SLO
    win.adapt()
    assert win.window == pytest.approx(0.004)
    assert win.grows == 0 and win.shrinks == 0


def test_observed_p95_is_the_95th_percentile():
    win = make_window()
    assert win.observed_p95() is None
    for ms in range(1, 101):  # 1..100 ms
        win.note_latency(ms / 1000.0)
    assert win.observed_p95() == pytest.approx(0.095)


def test_sample_window_slides():
    win = make_window(sample_size=10)
    for _ in range(10):
        win.note_latency(1.0)  # ancient overload
    for _ in range(10):
        win.note_latency(0.001)  # recovered
    assert win.observed_p95() == pytest.approx(0.001)


def test_snapshot_is_json_safe():
    import json

    win = make_window()
    win.note_latency(0.010)
    win.adapt()
    snap = win.snapshot()
    json.dumps(snap)
    assert snap["flushes"] == 1
    assert snap["samples"] == 1
    assert snap["slo_p95"] == 0.050


@pytest.mark.parametrize(
    "kw",
    [
        {"slo_p95": 0.0},
        {"min_window": 0.0},
        {"min_window": 0.1, "max_window": 0.01},
        {"flush_size": 0},
        {"shrink": 1.0},
        {"grow": 1.0},
        {"headroom": 1.5},
    ],
)
def test_rejects_bad_parameters(kw):
    with pytest.raises(ValueError):
        make_window(**kw)
