"""Bad fixture: a raising statement between segment creation and owner.

Expected finding: ``shm-unlink-all-paths`` — ``validate(data)`` sits
between ``SharedMemory(create=True)`` and the try/finally that unlinks
the segment; if it raises, the segment leaks on exactly the error path
the finally was written for.
"""

from multiprocessing import shared_memory


def export(data, validate):
    shm = shared_memory.SharedMemory(create=True, size=len(data))
    validate(data)  # can raise: nothing owns the segment yet
    try:
        shm.buf[: len(data)] = data
        return shm.name
    finally:
        shm.close()
        shm.unlink()
