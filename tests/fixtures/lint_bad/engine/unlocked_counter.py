"""Bad fixture: an attribute mutated both under and outside its lock.

Expected finding: ``lock-guard-inference`` — ``record`` protects
``self.completed`` with the lock, ``reset`` mutates it bare, so one of
the two sites is racing the other.
"""

import threading


class Stats:
    def __init__(self):
        self._lock = threading.Lock()
        self.completed = 0

    def record(self, n):
        with self._lock:
            self.completed += n

    def reset(self):
        self.completed = 0
