"""Bad fixture: requests the fork start method inside an engine module.

Expected finding: ``no-fork`` (fork from a multi-threaded driver can
copy a held lock into the child and deadlock it).
"""

import multiprocessing as mp


def make_pool_context():
    return mp.get_context("fork")
