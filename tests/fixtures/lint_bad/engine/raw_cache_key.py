"""Bad fixture: caches a scan result under a hand-rolled key.

Expected finding: ``fingerprint-keyed-cache`` (keys must come from the
blessed ``repro.engine.cache.fingerprint`` helper so equal problems
always collide and unequal ones never do).
"""


class Service:
    def __init__(self, cache):
        self.cache = cache

    def lookup(self, lst, op):
        key = (lst.n, op.name)
        return self.cache.get(key)
