"""Bad fixture: allocates an array without an explicit dtype in core.

Expected finding: ``explicit-dtype`` (platform-default dtypes vary;
kernels must pin ``dtype=`` so results and memory use are portable).
"""

import numpy as np


def workspace(n):
    return np.zeros(n)
