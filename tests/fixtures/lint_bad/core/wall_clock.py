"""Bad fixture: reads the wall clock directly inside a core module.

Expected finding: ``injectable-clock`` (kernel and trace timing must
flow through an injectable clock parameter so tests stay
deterministic).
"""

import time


def stamp():
    return time.perf_counter()
