"""Bad fixture: blocking calls inside an ``async def``.

Expected finding: ``no-blocking-in-async`` — ``time.sleep`` freezes
every connection multiplexed on the loop, directly at the call site and
one hop away through the sync ``warm_up`` helper.
"""

import time


def warm_up():
    time.sleep(0.2)


async def handler(payload):
    time.sleep(0.1)
    warm_up()
    return payload
