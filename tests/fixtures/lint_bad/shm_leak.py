"""Bad fixture: creates a shared-memory segment that is never unlinked.

Expected finding: ``shm-lifecycle`` (a ``SharedMemory(create=True)``
with no ``unlink`` in a ``finally`` block, no ``with`` statement and no
ownership transfer leaks the segment past process exit).
"""

from multiprocessing import shared_memory


def leak(nbytes):
    shm = shared_memory.SharedMemory(create=True, size=nbytes)
    return shm.name
