"""Bad fixture: index array allocated without an explicit dtype in an
application module — the tree the ``explicit-dtype`` rule newly covers.

Expected finding: ``explicit-dtype`` (index arrays feed gather/scatter
kernels and must pin ``dtype=INDEX_DTYPE`` so indices stay 64-bit on
every platform).
"""

import numpy as np


def node_order(n):
    return np.arange(n)
