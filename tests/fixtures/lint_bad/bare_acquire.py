"""Bad fixture: takes a lock with bare acquire/release calls.

Expected finding: ``lock-with-only`` (an exception between ``acquire``
and ``release`` leaves the lock held forever; use ``with``).
"""

import threading

_lock = threading.Lock()
_count = 0


def bump():
    global _count
    _lock.acquire()
    _count += 1
    _lock.release()
