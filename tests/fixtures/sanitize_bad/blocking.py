"""Seeded violation: a coroutine that blocks the event loop.

``handler`` calls ``time.sleep`` inside an ``async def``.  The static
``no-blocking-in-async`` rule flags the call site; dynamically, the
loop watchdog's heartbeat wakes ~400 ms late — far past the fixture
stall threshold — and files a :class:`StallReport`.
"""

import asyncio
import time

from repro.sanitize import start_loop_watchdog


async def handler() -> None:
    time.sleep(0.4)


async def _main() -> None:
    watchdog = start_loop_watchdog()
    try:
        await asyncio.sleep(0.05)
        await handler()
        await asyncio.sleep(0.05)
    finally:
        if watchdog is not None:
            watchdog.stop()


def exercise() -> None:
    asyncio.run(_main())
