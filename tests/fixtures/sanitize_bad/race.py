"""Seeded violation: a textbook write/write data race.

Two threads bump the same annotated cell with no common lock, so their
vector clocks are incomparable and the happens-before detector reports
the pair no matter how the scheduler happens to interleave them — the
detection is deterministic even though the race itself is not.
"""

import threading

from repro.sanitize import annotate_access


def exercise() -> None:
    def bump() -> None:
        annotate_access("fixture.counter", "write")

    threads = [threading.Thread(target=bump) for _ in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
