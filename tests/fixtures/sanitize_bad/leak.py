"""Seeded violation: a shared-memory segment that is never unlinked.

``exercise`` creates a segment and closes its handle but forgets
``unlink()`` — the classic leak the old ``ls /dev/shm`` CI greps hunted
for.  The resource ledger reports it as a ``shm-segment`` leak at
settlement.  An ``atexit`` hook does the forgotten unlink afterwards so
the fixture never actually dirties the host it runs on.

``_export_with_gap`` seeds the *static* half: a call that can raise
sits between ``SharedMemory(create=True)`` and the try/finally that
owns the segment, which ``shm-unlink-all-paths`` flags from the source
alone.  At runtime it settles cleanly — the dynamic leak above is the
only one the ledger reports.
"""

import atexit
import contextlib
from multiprocessing import shared_memory


def _checksum(payload: bytes) -> int:
    return sum(payload) & 0xFFFF


def _export_with_gap(payload: bytes) -> int:
    seg = shared_memory.SharedMemory(create=True, size=max(1, len(payload)))
    digest = _checksum(payload)  # can raise: leaks seg on that path
    try:
        seg.buf[: len(payload)] = payload
        return digest
    finally:
        seg.close()
        seg.unlink()


def exercise() -> None:
    _export_with_gap(b"sanitize-corpus")

    seg = shared_memory.SharedMemory(create=True, size=1 << 12)
    seg.close()  # handle released, but the segment itself lives on

    def _cleanup() -> None:
        with contextlib.suppress(Exception):
            left_over = shared_memory.SharedMemory(name=seg.name)
            left_over.close()
            left_over.unlink()

    atexit.register(_cleanup)
