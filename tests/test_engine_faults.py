"""Fault isolation, intra-batch coalescing and health counters.

The serving contract under test: ``Engine.run_batch`` never raises for
a single bad request.  Validation and execution failures come back as
``ok=False`` responses carrying a structured ``RequestError`` while
every healthy request in the batch — under both the sync and
thread-pool drivers — still gets exactly the result ``list_scan``
would have produced for it alone.
"""

import threading

import numpy as np
import pytest

from repro.baselines.serial import serial_list_scan
from repro.core.list_scan import list_scan
from repro.core.operators import MAX, MIN, SUM, AFFINE, Operator
from repro.engine import (
    Engine,
    EngineRequestError,
    RequestError,
    ScanRequest,
    validate_request,
)
from repro.lists.generate import random_list, random_values

SENTINEL = -1234567


def _poison_combine(a, b):
    if np.any(np.equal(a, SENTINEL)) or np.any(np.equal(b, SENTINEL)):
        raise RuntimeError("poisoned value encountered")
    return np.add(a, b)


#: Associative "sum" whose combine raises on a sentinel value — models
#: a custom operator blowing up mid-kernel for one request's data.
POISON = Operator(name="poison-sum", combine=_poison_combine, identity=0)


def healthy_list(n, seed):
    rng = np.random.default_rng(seed)
    return random_list(n, rng, values=random_values(n, rng))


def corrupt_list(n, seed):
    lst = healthy_list(n, seed)
    lst.next[n // 2] = n + 5  # out-of-range successor
    return lst


class TestValidationChannel:
    @pytest.mark.parametrize("parallel", [False, True])
    def test_corrupted_successor_array_isolated(self, parallel):
        # the PR's acceptance criterion: one corrupted request fails
        # structurally, everyone else still gets correct results
        lists = [healthy_list(n, seed) for seed, n in enumerate((40, 800, 7, 120, 3000))]
        bad = corrupt_list(64, seed=99)
        reqs = [ScanRequest(lst=lst) for lst in lists] + [ScanRequest(lst=bad)]
        engine = Engine(max_workers=4)
        responses = engine.run_batch(reqs, parallel=parallel)
        assert [r.ok for r in responses] == [True] * 5 + [False]
        failed = responses[-1]
        assert failed.result is None
        assert isinstance(failed.error, RequestError)
        assert failed.error.code == "bad-structure"
        assert failed.error.phase == "validate"
        for lst, resp in zip(lists, responses):
            np.testing.assert_array_equal(resp.result, serial_list_scan(lst, SUM))
        assert engine.stats.errors == 1

    def test_responses_keep_request_order_and_tags(self):
        reqs = [
            ScanRequest(lst=corrupt_list(30, 1), tag="bad-0"),
            ScanRequest(lst=healthy_list(50, 2), tag="good-1"),
            ScanRequest(lst=corrupt_list(31, 3), tag="bad-2"),
        ]
        responses = Engine().run_batch(reqs)
        assert [r.tag for r in responses] == ["bad-0", "good-1", "bad-2"]
        assert [r.ok for r in responses] == [False, True, False]

    def test_nan_rejected_for_nan_hostile_operators(self):
        lst = healthy_list(20, 4)
        lst.values = lst.values.astype(np.float64)
        lst.values[7] = np.nan
        for op in (MIN, MAX):
            [resp] = Engine().run_batch([ScanRequest(lst=lst, op=op)])
            assert not resp.ok and resp.error.code == "nan-values"
        [resp] = Engine().run_batch([ScanRequest(lst=lst, op=SUM)])
        assert resp.ok  # NaN is well-defined under +

    def test_operator_dtype_mismatch_rejected(self):
        lst = healthy_list(16, 5)
        lst.values = np.linspace(0.0, 1.0, 16)
        [resp] = Engine().run_batch([ScanRequest(lst=lst, op="xor")])
        assert not resp.ok and resp.error.code == "op-mismatch"

    def test_value_shape_mismatches_rejected(self):
        short = healthy_list(12, 6)
        short.values = np.ones(5, dtype=np.int64)  # wrong length
        flat = healthy_list(12, 7)  # AFFINE needs (n, 2) values
        [a, b] = Engine().run_batch(
            [ScanRequest(lst=short), ScanRequest(lst=flat, op=AFFINE)]
        )
        assert not a.ok and a.error.code == "bad-shape"
        assert not b.ok and b.error.code == "bad-shape"

    def test_object_dtype_values_rejected(self):
        lst = healthy_list(8, 8)
        lst.values = np.array([object() for _ in range(8)], dtype=object)
        [resp] = Engine().run_batch([ScanRequest(lst=lst)])
        assert not resp.ok
        assert resp.error.code in ("fingerprint", "bad-dtype")

    def test_validate_off_skips_probe(self):
        bad = corrupt_list(32, 9)
        engine = Engine(validate="off")
        [resp] = engine.run_batch([ScanRequest(lst=bad)])
        # without validation the kernel itself raises and the request
        # is quarantined at execution time instead
        assert not resp.ok and resp.error.phase == "execute"

    def test_strict_mode_catches_disjoint_cycle(self):
        lst = healthy_list(32, 10)
        # 3-cycle disjoint from the head chain, invisible to local checks?
        # (in-degree changes make fast validation catch most corruptions;
        # strict must catch it regardless)
        [resp] = Engine(validate="strict").run_batch([ScanRequest(lst=lst)])
        assert resp.ok  # healthy list passes strict mode

    def test_unknown_validation_mode_rejected(self):
        with pytest.raises(ValueError):
            Engine(validate="paranoid")
        with pytest.raises(ValueError):
            validate_request(ScanRequest(lst=healthy_list(4, 0)), mode="nope")


class TestExecutionContainment:
    @pytest.mark.parametrize("parallel", [False, True])
    def test_operator_raises_mid_shard_partial_results(self, parallel):
        # three same-size-class requests fuse into one shard; one of
        # them carries the sentinel that makes POISON.combine raise
        def make(seed):
            lst = random_list(100, seed, values=np.arange(100, dtype=np.int64))
            return lst

        a, b, c = make(1), make(2), make(3)
        b.values = b.values.copy()
        b.values[57] = SENTINEL  # mid-array: past the validation probe
        extra = healthy_list(500, 11)  # a healthy SUM shard alongside
        engine = Engine(max_workers=4)
        responses = engine.run_batch(
            [ScanRequest(lst=x, op=POISON) for x in (a, b, c)]
            + [ScanRequest(lst=extra)],
            parallel=parallel,
        )
        assert [r.ok for r in responses] == [True, False, True, True]
        assert responses[1].error.phase == "execute"
        assert responses[1].error.code == "execution"
        np.testing.assert_array_equal(responses[0].result, serial_list_scan(a, POISON))
        np.testing.assert_array_equal(responses[2].result, serial_list_scan(c, POISON))
        np.testing.assert_array_equal(responses[3].result, serial_list_scan(extra, SUM))
        assert engine.stats.retries == 1  # the fused shard was retried
        assert engine.stats.quarantined == 1  # only the poisoned request
        assert engine.stats.errors == 1

    def test_singleton_shard_failure_quarantined_without_retry(self):
        lst = random_list(60, 0, values=np.arange(60, dtype=np.int64))
        lst.values[30] = SENTINEL
        engine = Engine()
        [resp] = engine.run_batch([ScanRequest(lst=lst, op=POISON)])
        assert not resp.ok and resp.error.phase == "execute"
        assert engine.stats.quarantined == 1
        assert engine.stats.retries == 0  # nothing fused to retry

    def test_failed_results_never_cached(self):
        lst = random_list(60, 1, values=np.arange(60, dtype=np.int64))
        lst.values[30] = SENTINEL
        engine = Engine()
        for _ in range(2):
            [resp] = engine.run_batch([ScanRequest(lst=lst, op=POISON)])
            assert not resp.ok
        assert engine.stats.cache_hits == 0
        assert engine.stats.errors == 2

    def test_scan_and_map_scan_raise_engine_request_error(self):
        bad = corrupt_list(24, 12)
        engine = Engine()
        with pytest.raises(EngineRequestError) as excinfo:
            engine.scan(bad)
        assert excinfo.value.error.code == "bad-structure"
        with pytest.raises(EngineRequestError):
            engine.map_scan([healthy_list(10, 13), bad])

    def test_list_scan_engine_path_raises_structured(self):
        bad = corrupt_list(24, 14)
        with pytest.raises(EngineRequestError):
            list_scan(bad, SUM, engine=Engine())


class TestCoalescing:
    def test_duplicate_in_batch_executes_once(self):
        # the PR's acceptance criterion: same list twice in one batch
        # executes exactly once and stats.coalesced == 1
        lst = healthy_list(300, 20)
        other = healthy_list(80, 21)
        engine = Engine()
        responses = engine.run_batch(
            [ScanRequest(lst=lst), ScanRequest(lst=other), ScanRequest(lst=lst)]
        )
        assert engine.stats.coalesced == 1
        assert engine.stats.fused_lists + engine.stats.solo_runs == 2
        assert responses[2].coalesced and not responses[0].coalesced
        np.testing.assert_array_equal(responses[0].result, responses[2].result)
        np.testing.assert_array_equal(
            responses[0].result, serial_list_scan(lst, SUM)
        )

    def test_coalescing_works_with_cache_disabled(self):
        lst = healthy_list(150, 22)
        engine = Engine(cache_capacity=0)
        responses = engine.run_batch([ScanRequest(lst=lst), ScanRequest(lst=lst)])
        assert engine.stats.coalesced == 1
        assert all(r.ok for r in responses)
        np.testing.assert_array_equal(responses[0].result, responses[1].result)

    def test_coalesced_results_are_independent_copies(self):
        lst = healthy_list(64, 23)
        engine = Engine()
        first, second = engine.run_batch(
            [ScanRequest(lst=lst), ScanRequest(lst=lst)]
        )
        first.result[:] = -1
        np.testing.assert_array_equal(second.result, serial_list_scan(lst, SUM))

    def test_error_fans_out_to_duplicates(self):
        lst = random_list(90, 24, values=np.arange(90, dtype=np.int64))
        lst.values[40] = SENTINEL
        engine = Engine()
        responses = engine.run_batch(
            [ScanRequest(lst=lst, op=POISON), ScanRequest(lst=lst, op=POISON)]
        )
        assert [r.ok for r in responses] == [False, False]
        assert responses[1].coalesced
        assert responses[1].error is responses[0].error
        assert engine.stats.coalesced == 1
        assert engine.stats.errors == 2

    def test_semantically_different_duplicates_do_not_coalesce(self):
        lst = healthy_list(70, 25)
        engine = Engine()
        responses = engine.run_batch(
            [
                ScanRequest(lst=lst, inclusive=False),
                ScanRequest(lst=lst, inclusive=True),
            ]
        )
        assert engine.stats.coalesced == 0
        np.testing.assert_array_equal(
            responses[1].result, serial_list_scan(lst, SUM, inclusive=True)
        )


class TestConcurrentServing:
    @pytest.mark.parametrize("parallel", [False, True])
    def test_concurrent_submit_and_flush(self, parallel):
        """Producers submit (some poisoned) while a consumer flushes."""
        engine = Engine(max_workers=4, max_pending=None)
        per_thread = 12
        n_threads = 4
        lists = {}
        for t in range(n_threads):
            for k in range(per_thread):
                tag = (t, k)
                if k == 5:  # one corrupted request per producer
                    lists[tag] = corrupt_list(40 + t, seed=100 + t)
                else:
                    lists[tag] = healthy_list(20 + 10 * k + t, seed=200 + 10 * t + k)

        def producer(t):
            for k in range(per_thread):
                engine.submit(lists[(t, k)], SUM, tag=(t, k))

        threads = [
            threading.Thread(target=producer, args=(t,)) for t in range(n_threads)
        ]
        for th in threads:
            th.start()

        collected = {}
        expected = n_threads * per_thread
        while len(collected) < expected or any(th.is_alive() for th in threads):
            for resp in engine.flush(parallel=parallel):
                assert resp.tag not in collected  # answered exactly once
                collected[resp.tag] = resp
        for th in threads:
            th.join()
        for resp in engine.flush(parallel=parallel):
            assert resp.tag not in collected
            collected[resp.tag] = resp

        assert len(collected) == expected
        for tag, resp in collected.items():
            if tag[1] == 5:
                assert not resp.ok and resp.error.code == "bad-structure"
            else:
                assert resp.ok
                np.testing.assert_array_equal(
                    resp.result, serial_list_scan(lists[tag], SUM)
                )
        assert engine.stats.errors == n_threads

    def test_concurrent_drain_run_batch_threadpool(self):
        """Multiple drainers racing over one queue still answer every
        request exactly once, with failures contained per request."""
        engine = Engine(max_workers=4, max_pending=None)
        total = 40
        lists = {}
        for k in range(total):
            if k % 10 == 3:
                lists[k] = corrupt_list(30 + k, seed=300 + k)
            else:
                lists[k] = healthy_list(15 + 3 * k, seed=400 + k)
        for k in range(total):
            engine.submit(lists[k], SUM, tag=k)

        collected = {}
        lock = threading.Lock()

        def drainer():
            while True:
                batch = engine.queue.drain(max_requests=7)
                if not batch:
                    return
                for resp in engine.run_batch(batch, parallel=True):
                    with lock:
                        assert resp.tag not in collected
                        collected[resp.tag] = resp

        threads = [threading.Thread(target=drainer) for _ in range(3)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()

        assert sorted(collected) == list(range(total))
        for k, resp in collected.items():
            if k % 10 == 3:
                assert not resp.ok
            else:
                np.testing.assert_array_equal(
                    resp.result, serial_list_scan(lists[k], SUM)
                )


class TestHealthCounters:
    def test_counters_in_as_rows(self):
        engine = Engine()
        engine.run_batch([ScanRequest(lst=corrupt_list(16, 30))])
        rows = {name: value for name, value in engine.stats.as_rows()}
        assert rows["errors"] == 1
        for counter in ("retries", "quarantined", "coalesced"):
            assert counter in rows

    def test_cli_batch_stats_and_poison(self, capsys):
        from repro.cli import main

        code = main(
            [
                "batch", "--count", "12", "-n", "2048", "--min-n", "32",
                "--poison", "2", "--stats", "--seed", "5",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "engine health counters" in out
        assert "errors" in out and "coalesced" in out
        assert "2 request(s) failed" in out
