"""Unit tests for the engine's submission queue and backpressure."""

import threading
import time

import numpy as np
import pytest

from repro.core.operators import SUM
from repro.engine.queue import (
    BackpressureError,
    ScanRequest,
    ScanResponse,
    SubmissionQueue,
)
from repro.lists.generate import random_list


def make_request(n=8, seed=0, **kwargs):
    return ScanRequest(lst=random_list(n, seed), **kwargs)


class TestScanRequest:
    def test_normalizes_operator(self):
        req = make_request(op="sum")
        assert req.op is SUM

    def test_unknown_operator_rejected(self):
        with pytest.raises(KeyError):
            make_request(op="frobnicate")

    def test_ids_unique_and_increasing(self):
        a, b = make_request(), make_request()
        assert b.request_id > a.request_id

    def test_n_property(self):
        assert make_request(n=17).n == 17


class TestSubmissionQueue:
    def test_fifo_drain(self):
        q = SubmissionQueue()
        reqs = [make_request(seed=i) for i in range(5)]
        for r in reqs:
            q.submit(r)
        assert [r.request_id for r in q.drain()] == [
            r.request_id for r in reqs
        ]
        assert len(q) == 0

    def test_partial_drain(self):
        q = SubmissionQueue()
        for i in range(4):
            q.submit(make_request(seed=i))
        assert len(q.drain(max_requests=3)) == 3
        assert len(q) == 1

    def test_submit_returns_request_id(self):
        q = SubmissionQueue()
        req = make_request()
        assert q.submit(req) == req.request_id

    def test_nonblocking_raises_when_full(self):
        q = SubmissionQueue(max_requests=2)
        q.submit(make_request())
        q.submit(make_request())
        with pytest.raises(BackpressureError):
            q.submit(make_request(), block=False)

    def test_timeout_raises_when_full(self):
        q = SubmissionQueue(max_requests=1)
        q.submit(make_request())
        t0 = time.perf_counter()
        with pytest.raises(BackpressureError):
            q.submit(make_request(), timeout=0.05)
        assert time.perf_counter() - t0 >= 0.04

    def test_node_bound(self):
        q = SubmissionQueue(max_requests=None, max_nodes=100)
        q.submit(make_request(n=80))
        with pytest.raises(BackpressureError):
            q.submit(make_request(n=30), block=False)
        assert q.pending_nodes == 80

    def test_oversized_request_admitted_when_empty(self):
        # a single request larger than max_nodes must not wedge forever
        q = SubmissionQueue(max_nodes=10)
        q.submit(make_request(n=50), block=False)
        assert q.pending_nodes == 50

    def test_drain_unblocks_waiting_submitter(self):
        q = SubmissionQueue(max_requests=1)
        q.submit(make_request())
        done = threading.Event()

        def blocked_submit():
            q.submit(make_request(), timeout=5.0)
            done.set()

        t = threading.Thread(target=blocked_submit)
        t.start()
        time.sleep(0.05)
        assert not done.is_set()
        q.drain()
        t.join(timeout=5.0)
        assert done.is_set()
        assert len(q) == 1

    def test_oversized_not_starved_by_small_stream(self):
        # regression: an over-sized request used to be admitted only
        # when the queue was fully empty, so a steady stream of small
        # submitters could starve it forever.  It must be admitted as
        # soon as it is the frontmost waiter.
        q = SubmissionQueue(max_requests=None, max_nodes=100)
        q.submit(make_request(n=60))  # queue is never empty
        done = threading.Event()

        def oversized_submit():
            q.submit(make_request(n=500), timeout=5.0)
            done.set()

        t = threading.Thread(target=oversized_submit)
        t.start()
        t.join(timeout=5.0)
        assert done.is_set(), "over-sized request starved behind pending work"
        assert q.pending_nodes == 560
        # and small traffic afterwards still sees normal backpressure
        with pytest.raises(BackpressureError):
            q.submit(make_request(n=30), block=False)

    def test_oversized_nonblocking_still_respects_busy_queue(self):
        q = SubmissionQueue(max_nodes=100)
        q.submit(make_request(n=50))
        with pytest.raises(BackpressureError):
            q.submit(make_request(n=500), block=False)

    def test_oversized_respects_request_count_bound(self):
        q = SubmissionQueue(max_requests=1, max_nodes=100)
        q.submit(make_request(n=10))
        t0 = time.perf_counter()
        with pytest.raises(BackpressureError):
            q.submit(make_request(n=500), timeout=0.05)
        assert time.perf_counter() - t0 >= 0.04

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            SubmissionQueue(max_requests=0)
        with pytest.raises(ValueError):
            SubmissionQueue(max_nodes=0)


class TestScanResponse:
    def test_carries_tag_and_metadata(self):
        resp = ScanResponse(
            request_id=7,
            result=np.arange(3),
            algorithm="serial",
            cached=True,
            n=3,
            tag={"user": 42},
        )
        assert resp.tag == {"user": 42}
        assert resp.cached
