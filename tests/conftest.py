"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lists.generate import LinkedList, random_list


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_list(rng) -> LinkedList:
    """A 100-node random list with random integer values."""
    return random_list(100, rng, values=rng.integers(-50, 50, 100))


@pytest.fixture
def medium_list(rng) -> LinkedList:
    """A 10_000-node random list with random integer values."""
    return random_list(10_000, rng, values=rng.integers(-50, 50, 10_000))


def make_affine_values(rng: np.random.Generator, n: int) -> np.ndarray:
    """Random affine-map values (a in {1,2}, b in [-5, 5])."""
    return np.stack(
        [rng.integers(1, 3, n), rng.integers(-5, 6, n)], axis=1
    ).astype(np.int64)
