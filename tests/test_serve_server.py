"""Integration tests for the asyncio serving front-end.

Every test runs a real :class:`ScanServer` on an ephemeral loopback
port and talks to it over real sockets.  The engine-side locks are
instrumented with the runtime lock-order checker for the whole suite
(the serving layer drives the engine from an executor thread while
admissions run on the event-loop thread — exactly the interleaving the
audit exists to police).

No pytest-asyncio here: each test owns its loop via ``asyncio.run``.
"""

import asyncio
import json

import numpy as np
import pytest

import repro.engine.cache as cache_mod
import repro.engine.engine as engine_mod
import repro.engine.workers as workers_mod
from repro.core.list_scan import list_scan
from repro.engine import Engine
from repro.lint.lockorder import instrumented_locks
from repro.lists.generate import random_list, random_values
from repro.serve import ScanServer, ServeConfig
from repro.serve.client import run_bench
from repro.serve.protocol import FrameDecoder, encode_frame, encode_line
from repro.trace.tracer import Tracer


@pytest.fixture(autouse=True)
def lock_order_audit():
    """Race-audit the whole serve suite: engine locks become checked
    locks while the server suite hammers them from two threads."""
    with instrumented_locks(engine_mod, workers_mod, cache_mod) as graph:
        yield graph
    graph.assert_acyclic()


def make_server(**config_kw):
    config_kw.setdefault("port", 0)
    engine_kw = config_kw.pop("engine_kw", {})
    engine_kw.setdefault("executor", "sync")
    engine_kw.setdefault("max_pending", 1024)
    trace = config_kw.pop("trace", None)
    if trace is not None:  # one tracer sees both layers' spans
        engine_kw.setdefault("trace", trace)
    engine = Engine(**engine_kw)
    return ScanServer(engine, ServeConfig(**config_kw), trace=trace)


def scan_message(mid, n, seed, client=None):
    rng = np.random.default_rng(seed)
    lst = random_list(n, rng, values=random_values(n, rng))
    message = {
        "id": mid,
        "type": "scan",
        "next": lst.next.tolist(),
        "head": int(lst.head),
        "values": lst.values.tolist(),
        "op": "sum",
    }
    if client is not None:
        message["client"] = client
    return message, lst


async def framed_exchange(port, messages, expect=None):
    """Send frames, read until ``expect`` (default len(messages)) replies."""
    expect = len(messages) if expect is None else expect
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    decoder = FrameDecoder()
    replies = []
    try:
        for message in messages:
            writer.write(encode_frame(message))
        await writer.drain()
        while len(replies) < expect:
            data = await asyncio.wait_for(reader.read(1 << 16), timeout=10.0)
            if not data:
                break
            replies.extend(decoder.feed(data))
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return replies


# ----------------------------------------------------------------------
# correctness under concurrency
# ----------------------------------------------------------------------


def test_concurrent_client_soak_is_bit_identical():
    async def main():
        server = make_server(flush_size=16, max_window=0.005)
        await server.start()
        try:
            report = await run_bench(
                "127.0.0.1",
                server.port,
                clients=6,
                requests=25,
                sizes=(4, 33, 190, 512),
                poison_every=7,
                verify=True,
                seed=3,
            )
        finally:
            await server.shutdown()
        return report, server

    report, server = asyncio.run(main())
    counters = report["counters"]
    total = 6 * 25
    poison = sum(1 for i in range(25) if (i + 1) % 7 == 0) * 6
    assert counters["ok"] == total - poison
    # every healthy result matched list_scan bit for bit
    assert counters["verified"] == counters["ok"]
    assert counters["mismatched"] == 0
    # every poison request came back as a structured error, never a hang
    assert counters["poison_rejected"] == poison
    assert counters["poison_accepted"] == 0
    assert counters["disconnects"] == 0
    assert report["latency"]["count"] > 0
    # the engine saw every request; the server answered every request
    assert server.counters["responses"] == total
    snap = server.engine.stats.snapshot()
    assert snap["latency"]["total"]["count"] == total


def test_jsonl_dialect_and_admin_messages():
    async def main():
        server = make_server(flush_size=4, max_window=0.005)
        await server.start()
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            message, lst = scan_message(5, 12, seed=1)
            writer.write(encode_line(message))
            writer.write(encode_line({"id": 6, "type": "ping"}))
            await writer.drain()
            replies = {}
            while len(replies) < 2:
                line = await asyncio.wait_for(reader.readline(), timeout=10.0)
                reply = json.loads(line)
                replies[reply["id"]] = reply
            writer.close()
            await writer.wait_closed()
        finally:
            await server.shutdown()
        return replies, lst

    replies, lst = asyncio.run(main())
    assert replies[6]["pong"] is True
    scan = replies[5]
    assert scan["ok"] is True
    assert scan["result"] == list_scan(lst, "sum").tolist()
    assert scan["latency"] > 0


def test_http_stats_endpoint():
    async def main():
        server = make_server(flush_size=1)
        await server.start()
        try:
            # run one request through so the histograms are non-trivial
            message, _ = scan_message(1, 16, seed=2)
            await framed_exchange(server.port, [message])
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b"GET /stats HTTP/1.1\r\nHost: x\r\n\r\n")
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(), timeout=10.0)
            writer.close()
            await writer.wait_closed()
        finally:
            await server.shutdown()
        return raw

    raw = asyncio.run(main())
    head, _, body = raw.partition(b"\r\n\r\n")
    assert b"200 OK" in head
    assert b"application/json" in head
    payload = json.loads(body)
    # the engine half is exactly EngineStats.snapshot (same serializer
    # as `repro-c90 batch --stats`)
    assert payload["engine"]["requests"] == 1
    assert payload["engine"]["latency"]["total"]["count"] == 1
    assert payload["server"]["responses"] == 1
    assert payload["server"]["window"]["flushes"] >= 1
    assert payload["server"]["fairness"]["admitted"] == 1


def test_http_unknown_path_is_404():
    async def main():
        server = make_server()
        await server.start()
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b"GET /nope HTTP/1.1\r\n\r\n")
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(), timeout=10.0)
            writer.close()
            await writer.wait_closed()
        finally:
            await server.shutdown()
        return raw

    assert b"404" in asyncio.run(main()).split(b"\r\n")[0]


def test_malformed_frames_get_structured_errors_and_connection_survives():
    async def main():
        server = make_server(flush_size=1)
        await server.start()
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            decoder = FrameDecoder()
            import struct

            garbage = b"this is not json"
            writer.write(struct.pack(">I", len(garbage)) + garbage)
            bad_field, _ = scan_message(2, 8, seed=0)
            bad_field["head"] = 999
            writer.write(encode_frame(bad_field))
            good, lst = scan_message(3, 8, seed=0)
            writer.write(encode_frame(good))
            await writer.drain()
            replies = []
            while len(replies) < 3:
                data = await asyncio.wait_for(reader.read(1 << 16), timeout=10.0)
                assert data, "server hung up instead of answering"
                replies.extend(decoder.feed(data))
            writer.close()
            await writer.wait_closed()
        finally:
            await server.shutdown()
        return replies, lst

    replies, lst = asyncio.run(main())
    by_id = {r["id"]: r for r in replies}
    assert by_id[None]["error"]["code"] == "bad-message"
    assert by_id[2]["error"]["code"] == "bad-field"
    assert by_id[3]["ok"] is True
    assert by_id[3]["result"] == list_scan(lst, "sum").tolist()


# ----------------------------------------------------------------------
# fairness and shedding
# ----------------------------------------------------------------------


def test_greedy_client_is_limited_while_polite_client_sails_through():
    async def main():
        server = make_server(
            flush_size=4,
            max_window=0.005,
            rate=50.0,
            burst=5.0,
        )
        await server.start()
        try:
            # greedy: 40 requests in one burst, ignoring retry_after
            greedy = [
                scan_message(i, 8, seed=i, client="greedy")[0]
                for i in range(40)
            ]
            greedy_task = asyncio.ensure_future(
                framed_exchange(server.port, greedy)
            )
            # polite: 5 sequential requests, each awaited
            polite_ok = 0
            for i in range(5):
                message, _ = scan_message(100 + i, 8, seed=i, client="polite")
                (reply,) = await framed_exchange(server.port, [message])
                assert reply["ok"], reply
                polite_ok += 1
            greedy_replies = await greedy_task
        finally:
            await server.shutdown()
        return polite_ok, greedy_replies, server

    polite_ok, greedy_replies, server = asyncio.run(main())
    assert polite_ok == 5
    assert len(greedy_replies) == 40
    limited = [
        r for r in greedy_replies
        if not r["ok"] and r["error"]["code"] == "rate-limited"
    ]
    assert limited, "the greedy burst was never rate-limited"
    for reply in limited:
        assert reply["retry_after"] > 0
    assert server.counters["shed_rate_limited"] == len(limited)
    assert server.engine.stats.shed >= len(limited)


def test_saturation_sheds_with_overloaded_and_bounded_latency():
    async def main():
        server = make_server(
            engine_kw={"max_pending": 4},
            flush_size=1024,  # size trigger unreachable
            min_window=0.2,
            max_window=0.2,  # hold the queue full for 200 ms
        )
        await server.start()
        loop = asyncio.get_running_loop()
        t0 = loop.time()
        try:
            messages = [scan_message(i, 8, seed=i)[0] for i in range(60)]
            replies = await framed_exchange(server.port, messages)
        finally:
            await server.shutdown()
        return replies, loop.time() - t0, server

    replies, elapsed, server = asyncio.run(main())
    # every request was answered: no unhandled exception, no hung client
    assert len(replies) == 60
    ok = [r for r in replies if r["ok"]]
    shed = [r for r in replies if not r["ok"]]
    assert len(ok) == 4  # the queue's capacity
    assert len(shed) == 56
    for reply in shed:
        assert reply["error"]["code"] == "overloaded"
        assert reply["error"]["phase"] == "admit"
        assert reply["retry_after"] > 0
    # shed responses return immediately; the whole episode is bounded
    # by roughly one batch window, nowhere near a timeout
    assert elapsed < 5.0
    assert server.counters["shed_overloaded"] == 56
    assert server.engine.stats.snapshot()["shed"] == 56


# ----------------------------------------------------------------------
# lifecycle
# ----------------------------------------------------------------------


def test_shutdown_answers_admitted_work_and_closes_engine():
    async def main():
        server = make_server(
            flush_size=1024,
            min_window=30.0,
            max_window=30.0,  # nothing flushes on its own
        )
        await server.start()
        reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
        decoder = FrameDecoder()
        lists = {}
        for i in range(5):
            message, lst = scan_message(i, 16, seed=i)
            lists[i] = lst
            writer.write(encode_frame(message))
        await writer.drain()
        await asyncio.sleep(0.1)  # let the admissions land
        assert len(server.engine.queue) == 5
        await server.shutdown()  # must drain, not drop
        replies = []
        while len(replies) < 5:
            data = await asyncio.wait_for(reader.read(1 << 16), timeout=10.0)
            if not data:
                break
            replies.extend(decoder.feed(data))
        writer.close()
        return replies, lists, server

    replies, lists, server = asyncio.run(main())
    # admitted work was executed on the way down, results intact
    assert len(replies) == 5
    for reply in replies:
        assert reply["ok"], reply
        expected = list_scan(lists[reply["id"]], "sum")
        assert reply["result"] == expected.tolist()
    assert server.engine.queue.closed
    assert len(server._pending) == 0


def test_remote_shutdown_requires_opt_in():
    async def main():
        server = make_server()  # allow_shutdown defaults to False
        await server.start()
        try:
            (reply,) = await framed_exchange(
                server.port, [{"id": 1, "type": "shutdown"}]
            )
        finally:
            await server.shutdown()
        return reply

    reply = asyncio.run(main())
    assert reply["ok"] is False
    assert reply["error"]["code"] == "forbidden"


def test_remote_shutdown_with_opt_in_stops_the_server():
    async def main():
        server = make_server(allow_shutdown=True)
        await server.start()
        (reply,) = await framed_exchange(
            server.port, [{"id": 1, "type": "shutdown"}]
        )
        await asyncio.wait_for(server.wait_closed(), timeout=10.0)
        return reply, server

    reply, server = asyncio.run(main())
    assert reply["ok"] is True and reply["stopping"] is True
    assert server.engine.queue.closed


def test_traced_server_records_serving_spans():
    async def main():
        tracer = Tracer()
        server = make_server(flush_size=1, trace=tracer)
        await server.start()
        try:
            message, _ = scan_message(1, 16, seed=0)
            (reply,) = await framed_exchange(server.port, [message])
            assert reply["ok"]
        finally:
            await server.shutdown()
        return tracer

    tracer = asyncio.run(main())
    names = {span.name for root in tracer.roots for span in root.walk()}
    for expected in ("accept", "admit", "flush", "respond", "run_batch"):
        assert expected in names, f"missing {expected} span (got {names})"
