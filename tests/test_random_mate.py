"""Unit tests for the Miller/Reif random-mate algorithm."""

import numpy as np
import pytest

from repro.baselines.random_mate import random_mate_list_rank, random_mate_list_scan
from repro.baselines.serial import serial_list_rank, serial_list_scan
from repro.core.operators import AFFINE, MAX
from repro.core.stats import ScanStats
from repro.lists.generate import from_order, ordered_list, random_list, reversed_list
from .conftest import make_affine_values

SIZES = [1, 2, 3, 4, 5, 8, 50, 333, 5000]


class TestCorrectness:
    @pytest.mark.parametrize("n", SIZES)
    def test_random_lists(self, n, rng):
        lst = random_list(n, rng, values=rng.integers(-9, 9, n))
        got = random_mate_list_scan(lst, rng=rng)
        assert np.array_equal(got, serial_list_scan(lst)), f"n={n}"

    @pytest.mark.parametrize("layout", [ordered_list, reversed_list])
    def test_layouts(self, layout, rng):
        lst = layout(777, values=rng.integers(-9, 9, 777))
        assert np.array_equal(
            random_mate_list_scan(lst, rng=rng), serial_list_scan(lst)
        )

    def test_max(self, rng):
        lst = random_list(1000, rng, values=rng.integers(-99, 99, 1000))
        assert np.array_equal(
            random_mate_list_scan(lst, MAX, rng=rng), serial_list_scan(lst, MAX)
        )

    def test_affine(self, rng):
        n = 1000
        lst = from_order(rng.permutation(n), make_affine_values(rng, n))
        assert np.array_equal(
            random_mate_list_scan(lst, AFFINE, rng=rng),
            serial_list_scan(lst, AFFINE),
        )

    def test_inclusive(self, rng):
        lst = random_list(500, rng, values=rng.integers(-9, 9, 500))
        assert np.array_equal(
            random_mate_list_scan(lst, inclusive=True, rng=rng),
            serial_list_scan(lst, inclusive=True),
        )

    def test_rank(self, rng):
        lst = random_list(800, rng)
        assert np.array_equal(
            random_mate_list_rank(lst, rng=rng), serial_list_rank(lst)
        )

    def test_input_unmodified(self, small_list, rng):
        before = small_list.next.copy()
        random_mate_list_scan(small_list, rng=rng)
        assert np.array_equal(small_list.next, before)

    def test_many_seeds(self, rng):
        """Randomized control flow: exercise many coin sequences."""
        lst = random_list(97, rng, values=rng.integers(-9, 9, 97))
        expect = serial_list_scan(lst)
        for seed in range(20):
            assert np.array_equal(random_mate_list_scan(lst, rng=seed), expect)


class TestStats:
    def test_log_rounds(self, rng):
        n = 4096
        stats = ScanStats()
        random_mate_list_scan(random_list(n, rng), rng=rng, stats=stats)
        # expected 1/4 removal per round → ~log_{4/3} n ≈ 29 rounds;
        # rounds counts contraction + reconstruction replays
        assert 10 < stats.rounds < 150

    def test_work_is_linear_but_constant_heavy(self, rng):
        n = 50_000
        stats = ScanStats()
        random_mate_list_scan(random_list(n, rng), rng=rng, stats=stats)
        per_elem = stats.work_per_element(n)
        # geometric series: Σ live ≈ 4n contract + n reconstruct
        assert 3.0 < per_elem < 8.0

    def test_packs_every_round(self, rng):
        stats = ScanStats()
        random_mate_list_scan(random_list(1000, rng), rng=rng, stats=stats)
        assert stats.packs > 0
