"""Unit and property tests for the host-calibration subsystem.

The fitter must recover the coefficients it was shown (``fit_linear``
is exercised with hypothesis-generated ground truth plus bounded
noise), profiles must round-trip through their JSON schema and reject
the absurd-coefficient class, and — the point of the whole package — a
profile fitted from host-shaped timings must *change routing* relative
to the paper's static C-90 table.
"""

import dataclasses
import json
import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.cost_model import PAPER_C90_COSTS
from repro.analysis.predict import predict_run
from repro.calibrate import (
    SCHEMA_VERSION,
    CalibrationProfile,
    FitError,
    FitSample,
    ProfileError,
    fit_linear,
    fit_profile,
    load_profile,
    load_samples,
    measure_samples,
)
from repro.engine.router import Router

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Paper-shaped serial walk vs host-shaped: on the C-90 the serial
#: per-element cost is 34 clocks (~142 ns); a Python pointer-chase on a
#: modern host is ~1 µs/node while the vectorized kernels run at
#: memory-bandwidth speed.  These synthetic samples encode that regime.
HOST_SERIAL_NS_PER_ELEM = 1100.0
HOST_SERIAL_CONST_NS = 2500.0
HOST_SUBLIST_ALPHA = 5.0


def serial_samples(ns=(256, 1024, 4096, 16384)):
    return [
        FitSample(
            kind="serial",
            x=n,
            seconds=(HOST_SERIAL_NS_PER_ELEM * n + HOST_SERIAL_CONST_NS) * 1e-9,
        )
        for n in ns
    ]


def sublist_samples(ns=(1 << 10, 1 << 12, 1 << 14, 1 << 16)):
    return [
        FitSample(
            kind="sublist",
            x=n,
            seconds=HOST_SUBLIST_ALPHA * predict_run(n, PAPER_C90_COSTS).cycles * 1e-9,
        )
        for n in ns
    ]


def wyllie_samples(a=30.0, b=400.0, ns=(1 << 10, 1 << 12, 1 << 14, 1 << 16)):
    out = []
    for n in ns:
        rounds = math.ceil(math.log2(n))
        out.append(
            FitSample(kind="wyllie", x=n, seconds=rounds * (a * n + b) * 1e-9)
        )
    return out


def host_profile(tune=False):
    """A deterministic fitted profile in the host regime."""
    return fit_profile(
        serial_samples() + sublist_samples(),
        source="test",
        created_at=1000.0,
        tune=tune,
        tune_sizes=(1 << 9, 1 << 10, 1 << 11, 1 << 12),
    )


class TestFitLinear:
    @settings(max_examples=50, **COMMON)
    @given(
        slope=st.floats(min_value=0.1, max_value=1000.0),
        intercept=st.floats(min_value=0.0, max_value=1e6),
    )
    def test_recovers_exact_coefficients(self, slope, intercept):
        xs = [100.0, 1000.0, 10_000.0, 100_000.0]
        ys = [slope * x + intercept for x in xs]
        fit = fit_linear(xs, ys)
        assert fit.slope == pytest.approx(slope, rel=1e-6)
        assert fit.intercept == pytest.approx(intercept, rel=1e-6, abs=1e-3)
        assert fit.rms_rel_residual < 1e-6
        assert fit.n_samples == 4

    @settings(max_examples=50, **COMMON)
    @given(
        slope=st.floats(min_value=0.5, max_value=500.0),
        intercept=st.floats(min_value=0.0, max_value=1e4),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_recovers_under_relative_noise(self, slope, intercept, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        xs = [128.0, 512.0, 2048.0, 8192.0, 32_768.0, 131_072.0]
        noise = rng.uniform(-0.01, 0.01, size=len(xs))
        ys = [(slope * x + intercept) * (1.0 + d) for x, d in zip(xs, noise)]
        fit = fit_linear(xs, ys)
        # 1% multiplicative noise over a 3-decade sweep: the slope (the
        # routing-relevant coefficient) must come back tight; the
        # intercept absorbs noise from the large-x samples, so it is
        # only required to stay physical (>= 0, the repair invariant)
        assert fit.slope == pytest.approx(slope, rel=0.05)
        assert fit.intercept >= 0.0
        # the fit still predicts the large-x samples it saw to ~noise level
        x_big = 131_072.0
        predicted = fit.slope * x_big + fit.intercept
        assert predicted == pytest.approx(slope * x_big + intercept, rel=0.05)

    def test_negative_intercept_repaired_through_origin(self):
        # true intercept 0; noise drags the free fit's intercept
        # negative — the repair must refit through the origin
        xs = [10.0, 20.0, 40.0]
        ys = [95.0, 205.0, 410.0]  # free fit: slope 10.46, intercept -7.5
        fit = fit_linear(xs, ys)
        assert fit.intercept == 0.0
        assert fit.slope == pytest.approx(10.21, rel=0.01)

    def test_too_few_samples(self):
        with pytest.raises(FitError):
            fit_linear([100.0], [3400.0])

    def test_mismatched_lengths(self):
        with pytest.raises(FitError):
            fit_linear([1.0, 2.0], [1.0])

    def test_degenerate_design(self):
        with pytest.raises(FitError):
            fit_linear([500.0, 500.0, 500.0], [1.0, 2.0, 3.0])

    def test_non_finite_samples(self):
        with pytest.raises(FitError):
            fit_linear([1.0, float("nan")], [1.0, 2.0])

    def test_non_positive_slope_rejected(self):
        # decreasing data: the free fit's slope is negative and the
        # through-origin repair cannot rescue a negative dot product
        with pytest.raises(FitError):
            fit_linear([1.0, 2.0, 3.0], [-3.0, -6.0, -9.0])


class TestFitProfile:
    def test_serial_fit_recovers_host_coefficients(self):
        profile = fit_profile(serial_samples(), created_at=1.0, tune=False)
        assert profile.costs.serial_per_elem == pytest.approx(
            HOST_SERIAL_NS_PER_ELEM, rel=1e-6
        )
        assert profile.costs.serial_const == pytest.approx(
            HOST_SERIAL_CONST_NS, rel=1e-4
        )
        assert profile.costs.clock_ns == 1.0
        assert profile.fitted_kinds == ("serial",)

    def test_wyllie_fit_recovers_round_cost(self):
        profile = fit_profile(wyllie_samples(a=30.0, b=400.0),
                              created_at=1.0, tune=False)
        assert profile.costs.wyllie_round_per_elem == pytest.approx(30.0, rel=1e-6)
        assert profile.costs.wyllie_round_const == pytest.approx(400.0, rel=1e-4)

    def test_sublist_alpha_scales_vector_group_uniformly(self):
        profile = fit_profile(sublist_samples(), created_at=1.0, tune=False)
        base = PAPER_C90_COSTS
        fitted = profile.costs
        for name in ("initial_rank_per_elem", "final_pack_per_elem",
                     "find_sublist_const", "restore_per_elem"):
            assert getattr(fitted, name) == pytest.approx(
                getattr(base, name) * HOST_SUBLIST_ALPHA, rel=1e-4
            ), name
        # the paper's internal kernel ratios survive the rescale
        assert fitted.initial_rank_per_elem / fitted.final_rank_per_elem == (
            pytest.approx(base.initial_rank_per_elem / base.final_rank_per_elem)
        )

    def test_missing_kinds_inherit_alpha_scaled_base(self):
        profile = fit_profile(sublist_samples(), created_at=1.0, tune=False)
        alpha = profile.residuals  # fitted from sublist only
        assert set(alpha) == {"sublist"}
        assert profile.costs.serial_per_elem == pytest.approx(
            PAPER_C90_COSTS.serial_per_elem * HOST_SUBLIST_ALPHA, rel=1e-4
        )
        assert profile.costs.wyllie_round_per_elem == pytest.approx(
            PAPER_C90_COSTS.wyllie_round_per_elem * HOST_SUBLIST_ALPHA, rel=1e-4
        )

    def test_needs_two_samples_of_one_kind(self):
        with pytest.raises(FitError):
            fit_profile([], created_at=1.0)
        with pytest.raises(FitError):
            fit_profile(serial_samples()[:1], created_at=1.0)

    def test_tuning_refit_produces_cubics(self):
        profile = host_profile(tune=True)
        assert profile.m_coeffs is not None and len(profile.m_coeffs) == 4
        assert profile.s1_coeffs is not None and len(profile.s1_coeffs) == 4
        assert all(math.isfinite(c) for c in profile.m_coeffs)

    def test_tuning_needs_four_sizes(self):
        with pytest.raises(FitError):
            fit_profile(serial_samples(), created_at=1.0,
                        tune=True, tune_sizes=(512, 1024))

    def test_records_provenance(self):
        profile = host_profile()
        assert profile.source == "test"
        assert profile.created_at == 1000.0
        assert profile.samples == {"serial": 4, "sublist": 4}
        assert all(r < 1e-3 for r in profile.residuals.values())
        assert profile.host.get("cpu_count", 0) >= 1


class TestRoutingChange:
    """Acceptance: the fitted profile measurably changes routing."""

    def test_host_profile_moves_crossover_down(self):
        static = Router()
        fitted = Router(costs=host_profile().costs)
        # serial is ~8x more expensive relative to the vector kernels
        # on the synthetic host than on the C-90, so the serial/sublist
        # crossover must drop
        assert fitted.crossover() < static.crossover()

    def test_routing_differs_on_synthetic_workload(self):
        static = Router()
        fitted = Router(costs=host_profile().costs)
        probes = [1 << k for k in range(4, 18)]
        flipped = [n for n in probes
                   if static.choose(n) != fitted.choose(n)]
        assert flipped, "fitted profile never changed a routing decision"
        # every flip is away from the serial walk, not toward it
        for n in flipped:
            assert static.choose(n) == "serial"
            assert fitted.choose(n) != "serial"


class TestProfileRoundTrip:
    def test_dict_round_trip(self):
        profile = host_profile(tune=True)
        clone = CalibrationProfile.from_dict(
            json.loads(json.dumps(profile.as_dict()))
        )
        assert clone.costs == profile.costs
        assert clone.m_coeffs == pytest.approx(profile.m_coeffs)
        assert clone.samples == profile.samples
        assert clone.source == profile.source
        assert clone.schema_version == SCHEMA_VERSION

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "profile.json")
        profile = host_profile()
        profile.save(path)
        assert load_profile(path).costs == profile.costs

    def test_load_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ProfileError):
            load_profile(str(path))


class TestProfileValidation:
    def doc(self, **edits):
        doc = host_profile().as_dict()
        doc.update(edits)
        return doc

    def test_wrong_schema_version(self):
        with pytest.raises(ProfileError, match="schema_version"):
            CalibrationProfile.from_dict(self.doc(schema_version=99))

    def test_missing_required_key(self):
        doc = self.doc()
        del doc["costs"]
        with pytest.raises(ProfileError, match="missing required key"):
            CalibrationProfile.from_dict(doc)

    def test_missing_cost_field(self):
        doc = self.doc()
        del doc["costs"]["serial_per_elem"]
        with pytest.raises(ProfileError, match="missing fields"):
            CalibrationProfile.from_dict(doc)

    def test_unknown_cost_field(self):
        doc = self.doc()
        doc["costs"]["quantum_per_elem"] = 1.0
        with pytest.raises(ProfileError, match="unknown fields"):
            CalibrationProfile.from_dict(doc)

    def test_non_positive_slope_is_absurd(self):
        doc = self.doc()
        doc["costs"]["serial_per_elem"] = -1.0
        with pytest.raises(ProfileError, match="serial_per_elem"):
            CalibrationProfile.from_dict(doc)
        doc["costs"]["serial_per_elem"] = 0.0
        with pytest.raises(ProfileError, match="serial_per_elem"):
            CalibrationProfile.from_dict(doc)

    def test_non_finite_cost_rejected(self):
        profile = host_profile()
        bad = dataclasses.replace(
            profile,
            costs=dataclasses.replace(profile.costs, sync_const=float("nan")),
        )
        with pytest.raises(ProfileError, match="not finite"):
            bad.validate()

    def test_bad_tuning_coefficients(self):
        doc = self.doc()
        doc["tuning"] = {"m_coeffs": [1.0, 2.0], "s1_coeffs": [1, 2, 3, 4]}
        with pytest.raises(ProfileError, match="m_coeffs"):
            CalibrationProfile.from_dict(doc)

    def test_unknown_sample_kind(self):
        doc = self.doc()
        doc["fit"]["samples"]["quantum"] = 5
        with pytest.raises(ProfileError, match="quantum"):
            CalibrationProfile.from_dict(doc)

    def test_single_sample_count_rejected(self):
        doc = self.doc()
        doc["fit"]["samples"]["serial"] = 1
        with pytest.raises(ProfileError, match="at least 2"):
            CalibrationProfile.from_dict(doc)

    def test_save_refuses_invalid_profile(self, tmp_path):
        profile = host_profile()
        bad = dataclasses.replace(profile, created_at=float("nan"))
        with pytest.raises(ProfileError):
            bad.save(str(tmp_path / "never.json"))
        assert not (tmp_path / "never.json").exists()


class TestSampleIngestion:
    def test_fit_sample_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            FitSample(kind="quantum", x=10, seconds=1.0)
        with pytest.raises(ValueError):
            FitSample(kind="serial", x=0, seconds=1.0)
        with pytest.raises(ValueError):
            FitSample(kind="serial", x=10, seconds=0.0)
        with pytest.raises(ValueError):
            FitSample(kind="wyllie", x=10, seconds=1.0, n_lists=0)

    def test_load_bare_array(self, tmp_path):
        path = tmp_path / "samples.json"
        path.write_text(json.dumps([s.as_dict() for s in serial_samples()]))
        loaded = load_samples(str(path))
        assert [s.x for s in loaded] == [s.x for s in serial_samples()]
        assert all(s.kind == "serial" for s in loaded)

    def test_load_bench_artifact(self, tmp_path):
        payload = {
            "records": [
                {"experiment": "e", "claim": "c", "measured": 2.0, "unit": "x",
                 "trace": {"n": 4096, "observed_seconds": 3.2e-4, "m": 64}},
            ],
            "fit_samples": [s.as_dict() for s in wyllie_samples()],
        }
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(payload))
        loaded = load_samples(str(path))
        kinds = sorted({s.kind for s in loaded})
        assert kinds == ["sublist", "wyllie"]
        sub = [s for s in loaded if s.kind == "sublist"]
        assert len(sub) == 1 and sub[0].x == 4096
        assert sub[0].seconds == pytest.approx(3.2e-4)

    def test_load_trace_payload(self, tmp_path):
        payload = {
            "algorithm": "sublist",
            "n": 100_000,
            "seconds": 0.05,
            "trace": {"events": 12},
            "compare": {"n": 100_000, "observed_seconds": 0.042, "m": 1024,
                        "trajectory": {"decay_ratio": 0.31}},
        }
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(payload))
        (sample,) = load_samples(str(path))
        assert sample.kind == "sublist"
        # the scan span's own duration wins over the payload wall time
        assert sample.seconds == pytest.approx(0.042)
        assert sample.meta["decay_ratio"] == pytest.approx(0.31)

    def test_load_unrecognized_layout(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ProfileError, match="unrecognized"):
            load_samples(str(path))

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ProfileError):
            load_samples(str(tmp_path / "absent.json"))


class TestLiveMeasurement:
    def test_injected_clock_gives_deterministic_samples(self):
        ticks = iter(range(1000))

        def fake_clock():
            return float(next(ticks))

        samples = measure_samples(
            sizes={"serial": (64, 128)}, repeats=2, seed=7, clock=fake_clock
        )
        assert [s.x for s in samples] == [64, 128]
        # each repeat spans exactly one tick; min-of-k keeps 1.0 s
        assert all(s.seconds == 1.0 for s in samples)
        assert all(s.kind == "serial" and s.source == "live" for s in samples)

    def test_live_samples_fit_end_to_end(self):
        samples = measure_samples(sizes={"serial": (64, 256, 1024)},
                                  repeats=1, seed=3)
        profile = fit_profile(samples, created_at=5.0, tune=False)
        assert profile.costs.serial_per_elem > 0
        assert profile.fitted_kinds == ("serial",)

    def test_repeats_validated(self):
        with pytest.raises(ValueError):
            measure_samples(repeats=0)
