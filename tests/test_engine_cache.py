"""Unit tests for the structural fingerprint and the LRU result cache."""

import numpy as np
import pytest

from repro.core.operators import MAX, SUM
from repro.engine.cache import ResultCache, fingerprint
from repro.lists.generate import LinkedList, random_list, random_values


def make_list(n=32, seed=0):
    rng = np.random.default_rng(seed)
    return random_list(n, rng, values=random_values(n, rng))


class TestFingerprint:
    def test_deterministic(self):
        lst = make_list()
        assert fingerprint(lst, SUM) == fingerprint(lst.copy(), "sum")

    def test_sensitive_to_operator(self):
        lst = make_list()
        assert fingerprint(lst, SUM) != fingerprint(lst, MAX)

    def test_sensitive_to_inclusive_flag(self):
        lst = make_list()
        assert fingerprint(lst, SUM, False) != fingerprint(lst, SUM, True)

    def test_sensitive_to_values(self):
        lst = make_list()
        other = lst.copy()
        other.values = other.values + 1
        assert fingerprint(lst, SUM) != fingerprint(other, SUM)

    def test_sensitive_to_structure(self):
        a = make_list(seed=1)
        b = make_list(seed=2)
        assert fingerprint(a, SUM) != fingerprint(b, SUM)

    def test_sensitive_to_head(self):
        # same arrays, different head: n=1 self-loop degenerate aside,
        # build two lists sharing next/values but reporting different heads
        lst = make_list(8, seed=3)
        order_head = int(lst.head)
        other_head = int(lst.next[order_head])
        a = LinkedList(lst.next.copy(), order_head, lst.values.copy())
        b = LinkedList(lst.next.copy(), other_head, lst.values.copy())
        assert fingerprint(a, SUM) != fingerprint(b, SUM)

    def test_sensitive_to_dtype(self):
        lst = make_list()
        other = lst.copy()
        other.values = other.values.astype(np.int32)
        assert fingerprint(lst, SUM) != fingerprint(other, SUM)


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        key = b"k" * 16
        assert cache.get(key) is None
        cache.put(key, np.arange(5))
        got = cache.get(key)
        np.testing.assert_array_equal(got, np.arange(5))
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_returned_copy_is_isolated(self):
        cache = ResultCache()
        cache.put(b"a", np.arange(4))
        got = cache.get(b"a")
        got[:] = -1
        np.testing.assert_array_equal(cache.get(b"a"), np.arange(4))

    def test_stored_copy_is_isolated(self):
        cache = ResultCache()
        arr = np.arange(4)
        cache.put(b"a", arr)
        arr[:] = -1
        np.testing.assert_array_equal(cache.get(b"a"), np.arange(4))

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put(b"a", np.zeros(1))
        cache.put(b"b", np.ones(1))
        cache.get(b"a")  # refresh a; b becomes LRU
        cache.put(b"c", np.full(1, 2.0))
        assert cache.get(b"b") is None
        assert cache.get(b"a") is not None
        assert cache.get(b"c") is not None
        assert cache.evictions == 1

    def test_byte_bound_evicts(self):
        cache = ResultCache(capacity=100, max_bytes=8 * 10)
        cache.put(b"a", np.zeros(6))
        cache.put(b"b", np.zeros(6))
        assert len(cache) == 1
        assert cache.stored_bytes <= 80

    def test_single_result_over_byte_bound_not_stored(self):
        cache = ResultCache(capacity=10, max_bytes=8)
        cache.put(b"a", np.zeros(100))
        assert len(cache) == 0

    def test_zero_capacity_disables(self):
        cache = ResultCache(capacity=0)
        cache.put(b"a", np.zeros(3))
        assert cache.get(b"a") is None
        assert len(cache) == 0

    def test_overwrite_updates_bytes(self):
        cache = ResultCache(capacity=4)
        cache.put(b"a", np.zeros(10))
        cache.put(b"a", np.zeros(2))
        assert len(cache) == 1
        assert cache.stored_bytes == 2 * 8

    def test_clear(self):
        cache = ResultCache()
        cache.put(b"a", np.zeros(3))
        cache.clear()
        assert len(cache) == 0
        assert cache.stored_bytes == 0

    def test_clear_resets_counters(self):
        # post-clear hit-rate reporting must start a fresh epoch: stale
        # hit/miss/eviction counters would blend probes against the old
        # contents into the new measurement
        cache = ResultCache(capacity=1)
        cache.put(b"a", np.zeros(3))
        cache.get(b"a")  # hit
        cache.get(b"b")  # miss
        cache.put(b"b", np.zeros(3))  # evicts a
        before = cache.stats()
        assert (before["hits"], before["misses"], before["evictions"]) == (1, 1, 1)
        cache.clear()
        after = cache.stats()
        assert after == {
            "hits": 0, "misses": 0, "evictions": 0, "entries": 0, "bytes": 0,
        }
        # and the fresh epoch counts from zero
        cache.get(b"a")
        assert cache.stats()["misses"] == 1

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=-1)
        with pytest.raises(ValueError):
            ResultCache(max_bytes=-1)
