"""The sharded / out-of-core list-ranking path (``repro.distribute``).

Contracts under test:

* the three-phase sharded scan is bit-identical to the in-memory
  kernels for integer operators — across layouts, chunk counts,
  multi-list forests, and all three executors;
* partition planning covers ``[0, n)`` exactly and the entry set is
  precisely the boundary-crossing targets plus the heads;
* the lease gate bounds bytes in flight (oversized requests admitted
  alone rather than deadlocking);
* memmapped lists stream through the budget and leave no shm segments
  or stray files behind;
* the engine routes oversized auto shards to the sharded path and
  keeps small or forced shards on the fused kernels.
"""

import glob

import numpy as np
import pytest

import repro.distribute.leases as leases_mod
import repro.distribute.sharded as sharded_mod
import repro.engine.cache as cache_mod
import repro.engine.engine as engine_mod
import repro.engine.workers as workers_mod
from repro.baselines.serial import serial_list_rank, serial_list_scan
from repro.core.forest import forest_list_scan
from repro.core.operators import MAX, MIN, PROD, SUM, XOR
from repro.core.sublist import sublist_list_scan
from repro.distribute import (
    DistributedConfig,
    LeaseGate,
    create_output_memmap,
    find_entries,
    open_memmap_list,
    plan_chunks,
    sharded_forest_scan,
    sharded_list_rank,
    sharded_list_scan,
    write_memmap_list,
)
from repro.engine import Engine, ScanRequest
from repro.engine.workers import create_backend
from repro.lint.lockorder import instrumented_locks
from repro.lists.generate import (
    INDEX_DTYPE,
    blocked_list,
    ordered_list,
    random_list,
    reversed_list,
)


@pytest.fixture(autouse=True)
def lock_order_audit():
    """Race-audit every test: distribute + engine locks become checked.

    Mirrors the engine-concurrency suite: the sharded scan's merge lock
    and the engine locks under it are created as checked locks, any
    lock-order violation raises inside the test, and the recorded
    graph must be acyclic at teardown.  (No minimum-acquisitions
    assertion — the pure partition/planning tests take no locks.)
    """
    with instrumented_locks(
        sharded_mod, leases_mod, engine_mod, workers_mod, cache_mod
    ) as graph:
        yield graph
    graph.assert_acyclic()


@pytest.fixture(scope="module")
def process_backend():
    """One process pool shared by the module (pool startup is slow)."""
    backend = create_backend("processes", 2)
    yield backend
    backend.close()


def chunked(num_chunks):
    return DistributedConfig(num_chunks=num_chunks)


class TestConfig:
    def test_num_chunks_clamped_to_n(self):
        cfg = DistributedConfig(num_chunks=64)
        assert cfg.resolve_num_chunks(10, np.dtype(np.int64), 4) == 10

    def test_chunk_nodes_ceil_division(self):
        cfg = DistributedConfig(chunk_nodes=1000)
        assert cfg.resolve_num_chunks(2500, np.dtype(np.int64), 1) == 3

    def test_budget_derivation_covers_workers(self):
        cfg = DistributedConfig(memory_budget_bytes=1 << 30)
        # big problem, roomy budget: still at least one chunk per worker
        assert cfg.resolve_num_chunks(1 << 20, np.dtype(np.int64), 8) >= 8

    def test_budget_derivation_respects_budget(self):
        cfg = DistributedConfig(memory_budget_bytes=1 << 20, max_inflight=1)
        chunks = cfg.resolve_num_chunks(1 << 20, np.dtype(np.int64), 1)
        per_node = cfg.bytes_per_node(np.dtype(np.int64))
        assert -(-(1 << 20) // chunks) * per_node <= 1 << 20

    def test_should_shard_thresholds(self):
        assert DistributedConfig(min_nodes=0).should_shard(1, np.int64)
        assert not DistributedConfig(min_nodes=100).should_shard(99, np.int64)
        derived = DistributedConfig(memory_budget_bytes=96 * 100)
        assert derived.should_shard(100, np.dtype(np.int64))
        assert not derived.should_shard(99, np.dtype(np.int64))

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(memory_budget_bytes=0),
            dict(chunk_nodes=0),
            dict(num_chunks=0),
            dict(min_nodes=-1),
            dict(max_inflight=0),
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            DistributedConfig(**kwargs)


class TestPartition:
    @pytest.mark.parametrize("n,k", [(10, 3), (1, 1), (7, 7), (100, 8)])
    def test_plan_covers_range_contiguously(self, n, k):
        plan = plan_chunks(n, k)
        assert plan.n == n
        assert plan.num_chunks == k
        lo0, _ = plan.bounds(0)
        assert lo0 == 0
        prev_hi = 0
        for c in range(k):
            lo, hi = plan.bounds(c)
            assert lo == prev_hi
            assert hi >= lo
            prev_hi = hi
        assert prev_hi == n

    def test_chunk_of_matches_bounds(self):
        plan = plan_chunks(100, 7)
        nodes = np.arange(100, dtype=INDEX_DTYPE)
        owner = plan.chunk_of(nodes)
        for c in range(7):
            lo, hi = plan.bounds(c)
            assert np.all(owner[lo:hi] == c)

    def test_entries_are_cross_targets_plus_heads(self):
        # 0→1→2→3→4→5 (tail self-loop), chunks [0,3) and [3,6):
        # node 3 is the only cross-chunk target besides the head
        nxt = np.array([1, 2, 3, 4, 5, 5], dtype=INDEX_DTYPE)
        plan = plan_chunks(6, 2)
        heads = np.array([0], dtype=INDEX_DTYPE)
        entries = find_entries(lambda lo, hi: nxt[lo:hi], plan, heads)
        assert [e.tolist() for e in entries] == [[0], [3]]


class TestLeaseGate:
    def test_tracks_outstanding_and_peak(self):
        gate = LeaseGate(100)
        with gate.admit(40):
            with gate.admit(50):
                assert gate.outstanding_bytes == 90
            assert gate.outstanding_bytes == 40
        assert gate.outstanding_bytes == 0
        assert gate.peak_bytes == 90

    def test_oversize_admitted_alone(self):
        gate = LeaseGate(10)
        with gate.admit(1000):  # must not deadlock
            assert gate.outstanding_bytes == 1000

    def test_blocks_until_capacity_frees(self):
        import threading

        gate = LeaseGate(100)
        order = []
        release_first = threading.Event()

        def holder():
            with gate.admit(80):
                order.append("held")
                release_first.wait(5)

        def waiter():
            while not order:  # ensure holder is inside first
                pass
            with gate.admit(80):
                order.append("waited")

        t1 = threading.Thread(target=holder)
        t2 = threading.Thread(target=waiter)
        t1.start()
        t2.start()
        release_first.set()
        t1.join(5)
        t2.join(5)
        assert order == ["held", "waited"]
        assert gate.outstanding_bytes == 0


class TestCorrectness:
    @pytest.mark.parametrize("layout", [ordered_list, reversed_list])
    @pytest.mark.parametrize("num_chunks", [1, 2, 3, 8])
    def test_sequential_layouts(self, layout, num_chunks, rng):
        lst = layout(500, values=rng.integers(-9, 9, 500))
        got = sharded_list_scan(lst, config=chunked(num_chunks), rng=rng)
        assert np.array_equal(got, serial_list_scan(lst))

    @pytest.mark.parametrize("n", [1, 2, 3, 7, 100, 5000])
    def test_random_lists(self, n, rng):
        lst = random_list(n, rng, values=rng.integers(-9, 9, n))
        got = sharded_list_scan(lst, config=chunked(4), rng=rng)
        assert np.array_equal(got, serial_list_scan(lst))

    @pytest.mark.parametrize("op", [MAX, MIN, PROD, XOR], ids=lambda o: o.name)
    def test_operators(self, op, rng):
        vals = rng.integers(1, 9, 3000)
        lst = blocked_list(3000, 64, rng, values=vals)
        got = sharded_list_scan(lst, op, config=chunked(5), rng=rng)
        assert np.array_equal(got, serial_list_scan(lst, op))

    def test_inclusive(self, rng):
        lst = blocked_list(2000, 32, rng, values=rng.integers(-9, 9, 2000))
        got = sharded_list_scan(
            lst, inclusive=True, config=chunked(3), rng=rng
        )
        assert np.array_equal(got, serial_list_scan(lst, inclusive=True))

    def test_rank(self, rng):
        lst = blocked_list(5000, 64, rng)
        got = sharded_list_rank(lst, config=chunked(6), rng=rng)
        assert np.array_equal(got, serial_list_rank(lst))

    def test_multi_list_forest(self, rng):
        # three lists fused into one successor array, ranked together
        sizes = [700, 1, 1300]
        offsets = np.cumsum([0] + sizes)
        nxt = np.empty(int(offsets[-1]), dtype=INDEX_DTYPE)
        heads = []
        for off, size in zip(offsets, sizes):
            lst = random_list(size, rng)
            nxt[off : off + size] = lst.next + off
            heads.append(lst.head + off)
        values = rng.integers(-9, 9, int(offsets[-1]))
        heads = np.asarray(heads, dtype=INDEX_DTYPE)
        expect = forest_list_scan(nxt, values, heads, rng=rng)
        got = sharded_forest_scan(
            nxt, values, heads, config=chunked(5), rng=rng
        )
        assert np.array_equal(got, expect)

    def test_matches_sublist_bit_for_bit(self, rng):
        lst = blocked_list(20_000, 64, rng, values=rng.integers(-9, 9, 20_000))
        expect = sublist_list_scan(lst, rng=rng)
        got = sharded_list_scan(lst, config=chunked(8), rng=rng)
        assert np.array_equal(got, expect)

    def test_threads_backend_identical(self, rng):
        lst = blocked_list(20_000, 64, rng, values=rng.integers(-9, 9, 20_000))
        expect = serial_list_scan(lst)
        backend = create_backend("threads", 4)
        try:
            got = sharded_list_scan(
                lst, config=chunked(8), backend=backend, rng=rng
            )
        finally:
            backend.close()
        assert np.array_equal(got, expect)

    def test_processes_backend_identical(self, rng, process_backend):
        lst = blocked_list(60_000, 64, rng, values=rng.integers(-9, 9, 60_000))
        before = set(glob.glob("/dev/shm/psm_*"))
        got = sharded_list_scan(
            lst, config=chunked(6), backend=process_backend, rng=rng
        )
        assert np.array_equal(got, serial_list_scan(lst))
        assert set(glob.glob("/dev/shm/psm_*")) == before

    def test_deterministic_across_executors(self, rng, process_backend):
        # same seed -> identical bytes from sync, threads, and processes
        lst = blocked_list(30_000, 64, rng, values=rng.integers(-9, 9, 30_000))
        outs = []
        for backend in ("sync", "threads", process_backend):
            outs.append(
                sharded_list_scan(lst, config=chunked(5), backend=backend, rng=42)
            )
        assert np.array_equal(outs[0], outs[1])
        assert np.array_equal(outs[0], outs[2])

    def test_report_telemetry(self, rng):
        lst = blocked_list(8000, 64, rng)
        report = {}
        sharded_list_rank(lst, config=chunked(4), rng=rng, report=report)
        assert report["num_chunks"] == 4
        assert 0 < report["n_reduced"] <= 8000
        assert report["reduced_algorithm"] in ("serial", "wyllie", "sublist")
        assert report["memory_budget_bytes"] > 0

    def test_inputs_not_modified(self, rng):
        lst = blocked_list(5000, 64, rng, values=rng.integers(-9, 9, 5000))
        before_next = lst.next.copy()
        before_vals = lst.values.copy()
        sharded_list_scan(lst, config=chunked(7), rng=rng)
        assert np.array_equal(lst.next, before_next)
        assert np.array_equal(lst.values, before_vals)

    def test_float_values_close(self, rng):
        # floats re-associate across segment boundaries (docs/kernels.md)
        lst = blocked_list(4000, 64, rng, values=rng.random(4000))
        got = sharded_list_scan(lst, config=chunked(5), rng=rng)
        assert np.allclose(got, serial_list_scan(lst))


class TestOutOfCore:
    def test_memmap_roundtrip(self, tmp_path, rng):
        write_memmap_list(tmp_path, 5000, layout="blocked", seed=3)
        mlist = open_memmap_list(tmp_path)
        assert mlist.n == 5000
        assert isinstance(mlist.next, np.memmap)
        # a valid list: every node reachable from the head exactly once
        seen = np.zeros(5000, dtype=bool)
        node = mlist.head
        for _ in range(5000):
            assert not seen[node]
            seen[node] = True
            node = int(mlist.next[node])
        assert seen.all()

    @pytest.mark.parametrize("layout", ["ordered", "blocked"])
    def test_memmap_rank_inside_budget(self, tmp_path, layout, rng):
        n = 50_000
        write_memmap_list(tmp_path, n, layout=layout, seed=5)
        mlist = open_memmap_list(tmp_path)
        out = create_output_memmap(tmp_path, n, INDEX_DTYPE)
        cfg = DistributedConfig(
            memory_budget_bytes=1 << 20, chunk_nodes=4096
        )
        report = {}
        sharded_forest_scan(
            mlist.next,
            mlist.values,
            np.array([mlist.head], dtype=INDEX_DTYPE),
            SUM,
            config=cfg,
            out=out,
            rng=rng,
            report=report,
        )
        # the ranks of an n-node list are a permutation of [0, n)
        assert np.array_equal(np.sort(np.asarray(out)), np.arange(n))
        # chunk leases stayed inside the configured budget
        assert report["gate_peak_bytes"] <= cfg.memory_budget_bytes

    def test_memmap_through_process_pool(self, tmp_path, rng, process_backend):
        n = 60_000
        write_memmap_list(tmp_path, n, layout="blocked", seed=7)
        mlist = open_memmap_list(tmp_path)
        out = create_output_memmap(tmp_path, n, INDEX_DTYPE)
        before = set(glob.glob("/dev/shm/psm_*"))
        sharded_forest_scan(
            mlist.next,
            mlist.values,
            np.array([mlist.head], dtype=INDEX_DTYPE),
            SUM,
            config=DistributedConfig(
                memory_budget_bytes=2 << 20, chunk_nodes=8192
            ),
            backend=process_backend,
            out=out,
            rng=rng,
        )
        assert np.array_equal(np.sort(np.asarray(out)), np.arange(n))
        assert set(glob.glob("/dev/shm/psm_*")) == before


class TestEngineRouting:
    def test_oversized_auto_requests_route_distributed(self, rng):
        big = blocked_list(50_000, 64, rng, values=rng.integers(-9, 9, 50_000))
        small = random_list(500, rng, values=rng.integers(-9, 9, 500))
        expect_big = serial_list_scan(big)
        expect_small = serial_list_scan(small)
        with Engine(
            executor="threads",
            max_workers=2,
            cache_capacity=0,
            distributed=DistributedConfig(min_nodes=10_000, num_chunks=4),
        ) as engine:
            responses = engine.run_batch(
                [ScanRequest(lst=big), ScanRequest(lst=small)]
            )
            assert all(r.ok for r in responses)
            assert responses[0].algorithm == "distributed"
            assert responses[1].algorithm != "distributed"
            assert np.array_equal(responses[0].result, expect_big)
            assert np.array_equal(responses[1].result, expect_small)
            snap = engine.stats.snapshot()
        assert snap["distributed_runs"] == 1
        assert snap["distributed_chunks"] == 4
        assert snap["algorithms"]["distributed"] == 1

    def test_forced_algorithm_bypasses_sharding(self, rng):
        big = blocked_list(50_000, 64, rng, values=rng.integers(-9, 9, 50_000))
        with Engine(
            executor="sync",
            cache_capacity=0,
            distributed=DistributedConfig(min_nodes=0),
        ) as engine:
            (resp,) = engine.run_batch(
                [ScanRequest(lst=big, algorithm="sublist")]
            )
            assert resp.ok and resp.algorithm == "sublist"
            assert engine.stats.distributed_runs == 0

    def test_without_config_nothing_routes(self, rng):
        big = blocked_list(50_000, 64, rng)
        with Engine(executor="sync", cache_capacity=0) as engine:
            (resp,) = engine.run_batch([ScanRequest(lst=big)])
            assert resp.ok and resp.algorithm != "distributed"
            assert engine.stats.distributed_runs == 0

    def test_distributed_failure_quarantines(self, rng):
        # a poisoned oversized request fails in the sharded path, then
        # again solo — the engine answers with a structured error, and
        # a healthy shard-mate still gets its result
        bad = blocked_list(30_000, 64, rng)
        bad.next[15_000] = 10**9  # out of range, validation off
        good = blocked_list(29_000, 64, rng, values=rng.integers(-9, 9, 29_000))
        with Engine(
            executor="sync",
            cache_capacity=0,
            validate="off",
            distributed=DistributedConfig(min_nodes=10_000, num_chunks=4),
        ) as engine:
            responses = engine.run_batch(
                [ScanRequest(lst=bad), ScanRequest(lst=good)]
            )
        assert [r.ok for r in responses] == [False, True]
        assert responses[0].error.phase == "execute"
        assert np.array_equal(responses[1].result, serial_list_scan(good))

    def test_traced_sharded_run_has_chunk_spans(self, rng):
        from repro.trace import Tracer

        lst = blocked_list(20_000, 64, rng)
        tracer = Tracer()
        with Engine(
            executor="sync",
            cache_capacity=0,
            trace=tracer,
            distributed=DistributedConfig(min_nodes=10_000, num_chunks=3),
        ) as engine:
            (resp,) = engine.run_batch([ScanRequest(lst=lst)])
        assert resp.ok and resp.algorithm == "distributed"
        root = tracer.last_root()
        (sharded,) = root.find_all("sharded_scan")
        contract = sharded.find("contract")
        expand = sharded.find("expand")
        assert sharded.find("reduce") is not None
        assert len(contract.find_all("chunk_contract")) == 3
        assert len(expand.find_all("chunk_expand")) == 3
