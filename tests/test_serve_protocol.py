"""Wire-protocol unit tests: framing, parsing, error mapping."""

import numpy as np
import pytest

from repro.core.list_scan import list_scan
from repro.engine.queue import ScanResponse
from repro.lists.generate import random_list
from repro.serve.protocol import (
    FrameDecoder,
    ProtocolError,
    decode_message,
    encode_frame,
    encode_line,
    error_to_wire,
    parse_request,
    response_to_wire,
)


def valid_message(**overrides):
    rng = np.random.default_rng(0)
    lst = random_list(8, rng)
    message = {
        "id": 1,
        "type": "scan",
        "next": lst.next.tolist(),
        "head": int(lst.head),
        "values": list(range(8)),
        "op": "sum",
    }
    message.update(overrides)
    return message


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------


def test_frame_roundtrip():
    message = {"id": 42, "type": "ping"}
    decoder = FrameDecoder()
    assert decoder.feed(encode_frame(message)) == [message]


def test_frame_decoder_handles_partial_and_batched_feeds():
    messages = [{"id": i, "v": "x" * i} for i in range(5)]
    stream = b"".join(encode_frame(m) for m in messages)
    decoder = FrameDecoder()
    out = []
    for i in range(0, len(stream), 3):  # drip-feed 3 bytes at a time
        out.extend(decoder.feed(stream[i : i + 3]))
    assert out == messages


def test_frame_decoder_rejects_oversized_frame():
    decoder = FrameDecoder(max_bytes=16)
    with pytest.raises(ProtocolError) as exc_info:
        decoder.feed(encode_frame({"pad": "y" * 100}))
    assert exc_info.value.error.code == "bad-message"


def test_jsonl_roundtrip():
    message = {"id": 7, "type": "stats"}
    line = encode_line(message)
    assert line.endswith(b"\n")
    assert decode_message(line.strip()) == message


@pytest.mark.parametrize(
    "payload",
    [b"not json at all", b"\xff\xfe\x00", b"[1, 2, 3]", b'"just a string"'],
)
def test_decode_message_rejects_garbage(payload):
    with pytest.raises(ProtocolError) as exc_info:
        decode_message(payload)
    assert exc_info.value.error.code == "bad-message"
    assert exc_info.value.error.phase == "admit"


# ----------------------------------------------------------------------
# request parsing
# ----------------------------------------------------------------------


def test_parse_request_builds_equivalent_scan_request():
    message = valid_message()
    request = parse_request(message)
    assert request.lst.next.tolist() == message["next"]
    assert request.lst.values.tolist() == message["values"]
    assert request.op.name == "sum"
    assert request.inclusive is False
    assert request.algorithm == "auto"


def test_parse_rank_defaults_to_unit_values():
    message = valid_message(type="rank")
    message.pop("values")
    request = parse_request(message)
    assert request.lst.values.tolist() == [1] * 8


@pytest.mark.parametrize(
    "mutation",
    [
        {"type": "frobnicate"},
        {"next": None},
        {"next": []},
        {"next": [[0, 1], [1, 0]]},
        {"next": ["a", "b"]},
        {"head": None},
        {"head": "zero"},
        {"head": 99},
        {"head": -1},
        {"head": True},
        {"values": "not-a-list"},
        {"values": ["a", 1, None]},
        {"op": "no-such-op"},
        {"inclusive": "yes"},
        {"algorithm": "quantum"},
    ],
    ids=lambda m: f"{next(iter(m))}={next(iter(m.values()))!r}"[:40],
)
def test_parse_request_rejects_bad_fields(mutation):
    message = valid_message(**mutation)
    with pytest.raises(ProtocolError) as exc_info:
        parse_request(message)
    error = exc_info.value.error
    assert error.code == "bad-field"
    assert error.phase == "admit"
    assert exc_info.value.wire_id == message.get("id")


# ----------------------------------------------------------------------
# response encoding
# ----------------------------------------------------------------------


def test_response_to_wire_success_shape():
    rng = np.random.default_rng(1)
    lst = random_list(16, rng)
    result = list_scan(lst, "sum")
    resp = ScanResponse(
        request_id=3, result=result, algorithm="serial", n=16, batch_lists=4
    )
    wire = response_to_wire("abc", resp, latency=0.002)
    assert wire == {
        "id": "abc",
        "ok": True,
        "result": result.tolist(),
        "algorithm": "serial",
        "cached": False,
        "coalesced": False,
        "batch_lists": 4,
        "n": 16,
        "latency": 0.002,
    }


def test_error_responses_carry_structured_error_and_retry_after():
    message = valid_message(head=99)
    with pytest.raises(ProtocolError) as exc_info:
        parse_request(message)
    wire = error_to_wire(exc_info.value.wire_id, exc_info.value.error, 0.012)
    assert wire["ok"] is False
    assert wire["id"] == 1
    assert wire["error"]["code"] == "bad-field"
    assert wire["error"]["phase"] == "admit"
    assert wire["retry_after"] == 0.012
    # without a hint the key is absent, not null
    assert "retry_after" not in error_to_wire(1, exc_info.value.error)
