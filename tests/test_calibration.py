"""Unit tests for kernel-model calibration against the paper's equations."""

import pytest

from repro.analysis.cost_model import PAPER_C90_COSTS
from repro.machine.calibration import (
    compare_with_paper,
    derive_rates,
    paper_equations,
    to_kernel_costs,
)
from repro.machine.config import CRAY_C90, CRAY_YMP, DECSTATION_5000


class TestDerivedRates:
    def test_all_kernels_present(self):
        k = derive_rates(CRAY_C90)
        assert set(k) == {
            "initialize",
            "initial_rank",
            "initial_pack",
            "find_sublist",
            "final_rank",
            "final_pack",
            "restore",
            "serial",
        }

    def test_models_evaluate_linearly(self):
        k = derive_rates(CRAY_C90)
        model = k["initial_rank"]
        assert model(1000) == pytest.approx(model.per_elem * 1000 + model.const)

    def test_final_rank_costs_more_than_initial(self):
        """Phase 3 adds the scatter of the scan values."""
        k = derive_rates(CRAY_C90)
        assert k["final_rank"].per_elem > k["initial_rank"].per_elem

    def test_ymp_slower_than_c90(self):
        c90 = derive_rates(CRAY_C90)
        ymp = derive_rates(CRAY_YMP)
        for name in c90:
            assert ymp[name].per_elem >= c90[name].per_elem, name


class TestPaperCalibration:
    """The headline calibration property: the C-90 preset reproduces the
    paper's Section 3 timing equations."""

    @pytest.mark.parametrize("kernel", list(paper_equations()))
    def test_slopes_within_15_percent(self, kernel):
        row = compare_with_paper(CRAY_C90)[kernel]
        assert row["rel_err_a"] < 0.15, (
            f"{kernel}: model {row['model_a']:.2f} vs paper {row['paper_a']:.2f}"
        )

    def test_serial_exact(self):
        row = compare_with_paper(CRAY_C90)["serial"]
        assert row["rel_err_a"] == 0.0

    def test_intercepts_match_on_c90(self):
        for kernel, row in compare_with_paper(CRAY_C90).items():
            assert row["model_b"] == pytest.approx(row["paper_b"]), kernel


class TestToKernelCosts:
    def test_combined_slopes_near_paper(self):
        derived = to_kernel_costs(CRAY_C90)
        assert derived.a == pytest.approx(PAPER_C90_COSTS.a, rel=0.15)
        assert derived.c == pytest.approx(PAPER_C90_COSTS.c, rel=0.15)
        assert derived.e == pytest.approx(PAPER_C90_COSTS.e, rel=0.15)

    def test_clock_propagates(self):
        assert to_kernel_costs(CRAY_YMP).clock_ns == CRAY_YMP.clock_ns

    def test_decstation_overheads_scaled(self):
        dec = to_kernel_costs(DECSTATION_5000)
        assert dec.initialize_const < PAPER_C90_COSTS.initialize_const
