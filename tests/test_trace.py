"""Unit tests for the tracing subsystem (``repro.trace``).

The tracer is exercised with a counting clock so every timestamp is a
distinct integer in call order — structural invariants (nesting,
duration arithmetic) are asserted exactly, with no wall-clock
tolerance.  Kernel integration is covered end to end: a traced
``sublist_list_scan`` must record the per-phase span tree and the
observed live-sublist trajectory that ``compare_trace`` overlays on
the Section 4 model.
"""

import io
import json

import numpy as np
import pytest

from repro.baselines.serial import serial_list_scan
from repro.core.list_scan import list_scan
from repro.core.sublist import sublist_list_scan
from repro.lists.generate import ordered_list, random_list, random_values
from repro.trace import (
    NULL_TRACER,
    Tracer,
    compare_trace,
    counting_clock,
    deviation_ok,
    find_scan_span,
    format_tree,
    null_span,
    resolve_trace,
    to_json,
    trace_to_dict,
    write_jsonl,
)


class TestTracerCore:
    def test_span_nesting_and_durations(self):
        tr = Tracer(clock=counting_clock())
        with tr.span("root", n=4) as root:
            with tr.span("child_a"):
                tr.event("tick", k=1)
            with tr.span("child_b") as b:
                assert tr.current() is b
        assert root.t1 is not None
        assert [c.name for c in root.children] == ["child_a", "child_b"]
        # counting clock: every child opens after its parent and closes
        # before it, so durations nest strictly
        for child in root.children:
            assert root.t0 < child.t0 <= child.t1 < root.t1
        assert sum(c.duration for c in root.children) <= root.duration
        (tick,) = root.children[0].events
        assert tick.name == "tick" and tick.attrs == {"k": 1}
        assert root.children[0].t0 < tick.t < root.children[0].t1

    def test_explicit_parent_attaches_across_stack(self):
        tr = Tracer(clock=counting_clock())
        with tr.span("batch") as batch:
            pass  # batch is closed; a later span still pins under it
        with tr.span("shard", parent=batch):
            pass
        assert [c.name for c in batch.children] == ["shard"]
        assert len(tr.roots) == 1

    def test_annotate_and_find(self):
        tr = Tracer(clock=counting_clock())
        with tr.span("outer"), tr.span("inner"):
            tr.annotate(m=7)
        root = tr.last_root()
        assert root.find("inner").attrs == {"m": 7}
        assert root.find("missing") is None
        assert [s.name for s in root.walk()] == ["outer", "inner"]

    def test_disabled_tracer_records_nothing(self):
        tr = Tracer(enabled=False)
        with tr.span("root") as handle:
            tr.event("x")
            tr.annotate(y=1)
        assert handle is None
        assert tr.roots == []
        assert NULL_TRACER.roots == []

    def test_event_without_open_span_is_dropped(self):
        tr = Tracer(clock=counting_clock())
        tr.event("orphan")
        assert tr.roots == []

    def test_reset(self):
        tr = Tracer(clock=counting_clock())
        with tr.span("a"):
            pass
        tr.reset()
        assert tr.roots == [] and tr.last_root() is None

    def test_resolve_trace(self):
        tr = Tracer()
        assert resolve_trace(None) is None
        assert resolve_trace(tr) is tr
        assert resolve_trace("off") is NULL_TRACER
        with pytest.raises(TypeError):
            resolve_trace("verbose")

    def test_null_span_is_reusable_noop(self):
        with null_span("anything", parent=None, n=3) as handle:
            assert handle is None

    def test_exception_still_closes_span(self):
        tr = Tracer(clock=counting_clock())
        with pytest.raises(RuntimeError), tr.span("root"), tr.span("child"):
            raise RuntimeError("boom")
        root = tr.last_root()
        assert root.t1 is not None
        assert root.children[0].t1 is not None
        assert tr.current() is None


class TestExport:
    def _sample(self):
        tr = Tracer(clock=counting_clock())
        with tr.span("root", n=np.int64(8)):
            tr.event("pack", live_after=np.int64(3))
            with tr.span("child"):
                pass
        return tr

    def test_trace_to_dict_and_json_roundtrip(self):
        tr = self._sample()
        d = trace_to_dict(tr)
        # numpy attrs must be flattened so json.dumps works
        text = to_json(tr)
        assert json.loads(text) == json.loads(json.dumps(d))
        (root,) = d["roots"]
        assert root["name"] == "root"
        assert root["attrs"] == {"n": 8}
        assert root["events"][0]["attrs"] == {"live_after": 3}
        assert [c["name"] for c in root["children"]] == ["child"]

    def test_write_jsonl_links_parents(self):
        tr = self._sample()
        buf = io.StringIO()
        count = write_jsonl(tr, buf)
        rows = [json.loads(line) for line in buf.getvalue().splitlines()]
        assert count == len(rows) == 2
        assert rows[0]["parent_id"] is None
        assert rows[1]["parent_id"] == rows[0]["id"]

    def test_format_tree_shows_spans_and_events(self):
        tr = self._sample()
        text = format_tree(tr)
        assert "root" in text and "child" in text and "pack" in text
        hidden = format_tree(tr, events=False)
        assert "pack" not in hidden

    def test_format_tree_truncates_events(self):
        tr = Tracer(clock=counting_clock())
        with tr.span("root"):
            for k in range(10):
                tr.event("e", k=k)
        text = format_tree(tr, max_events=3)
        assert "7 more" in text


class TestKernelTracing:
    def test_sublist_scan_records_phases_and_packs(self):
        lst = random_list(20_000, rng=3)
        tr = Tracer(clock=counting_clock())
        out = sublist_list_scan(lst, "sum", trace=tr)
        ref = serial_list_scan(lst.copy(), "sum")
        np.testing.assert_array_equal(out, ref)

        scan = find_scan_span(tr)
        assert scan is not None
        assert scan.attrs["n"] == 20_000
        assert scan.attrs["m"] >= 2 and scan.attrs["s1"] > 0
        child_names = [c.name for c in scan.children]
        for name in ("initialize", "phase1", "find_sublist_list",
                     "phase2", "phase3", "restore"):
            assert name in child_names, name
        packs = scan.find("phase1").events_named("pack")
        assert packs, "phase 1 recorded no pack events"
        live = [e.attrs["live_after"] for e in packs]
        assert live == sorted(live, reverse=True)
        assert all(e.attrs["live_before"] >= e.attrs["live_after"] for e in packs)
        steps = [e.attrs["step"] for e in packs]
        assert steps == sorted(steps) and len(set(steps)) == len(steps)

    def test_trace_off_matches_untraced(self):
        lst = random_list(5_000, rng=4)
        base = sublist_list_scan(lst.copy(), "sum", rng=0)
        off = sublist_list_scan(lst.copy(), "sum", rng=0, trace="off")
        np.testing.assert_array_equal(base, off)
        assert NULL_TRACER.roots == []

    def test_list_scan_wraps_with_dispatch_span(self):
        lst = random_list(10_000, rng=5)
        tr = Tracer(clock=counting_clock())
        list_scan(lst, "sum", algorithm="sublist", trace=tr)
        root = tr.last_root()
        assert root.name == "list_scan"
        assert root.attrs["algorithm"] == "sublist"
        assert root.find("sublist_scan") is not None

    def test_list_scan_engine_rejects_trace_kwarg(self):
        from repro.engine import Engine

        lst = random_list(64, rng=0)
        with pytest.raises(TypeError, match="trace"):
            list_scan(lst, "sum", engine=Engine(), trace=Tracer())


class TestCompare:
    def test_compare_random_list_tracks_model(self):
        n = 60_000
        rng = np.random.default_rng(12)
        lst = random_list(n, rng, values=random_values(n, rng))
        tr = Tracer()
        sublist_list_scan(lst, "sum", trace=tr, rng=rng)
        report = compare_trace(tr)
        assert report.n == n
        assert report.observed_packs == len(report.points) > 0
        # random layouts track g(s): the paper's Figure 12 claim
        assert report.rms_rel_dev < 0.1
        assert 0.3 < report.decay_ratio < 2.0
        # the first packs follow the Eq. 6 schedule exactly (the
        # ScheduleIterator replays it)
        assert report.schedule_rms_rel_dev < 0.25
        assert report.predicted_cycles > 0
        d = report.as_dict()
        json.dumps(d)  # JSON-ready
        assert d["trajectory"]["points"][0]["step"] == report.points[0].step
        assert len(report.summary_rows()) >= 5

    def test_compare_ordered_list_deviates(self):
        # equally spaced splitters on an ordered list create equal
        # sublists: the trajectory is a step function, not exponential
        # decay, and the deviation metrics must say so
        n = 60_000
        lst = ordered_list(n)
        tr = Tracer()
        sublist_list_scan(lst, "sum", trace=tr)
        report = compare_trace(tr)
        random_lst = random_list(n, rng=12)
        tr2 = Tracer()
        sublist_list_scan(random_lst, "sum", trace=tr2, rng=12)
        random_report = compare_trace(tr2)
        assert report.rms_rel_dev > 2 * random_report.rms_rel_dev

    def test_compare_phase3(self):
        lst = random_list(30_000, rng=7)
        tr = Tracer()
        sublist_list_scan(lst, "sum", trace=tr, rng=7)
        report = compare_trace(tr, phase="phase3")
        assert report.phase == "phase3"
        assert report.observed_packs > 0

    def test_compare_requires_scan_span(self):
        tr = Tracer(clock=counting_clock())
        with tr.span("unrelated"):
            pass
        with pytest.raises(ValueError, match="no 'sublist_scan'"):
            compare_trace(tr)

    def test_compare_requires_pack_events(self):
        tr = Tracer(clock=counting_clock())
        with tr.span("sublist_scan", n=100, m=4, s1=5.0), tr.span("phase1"):
            pass
        with pytest.raises(ValueError, match="no pack events"):
            compare_trace(tr)

    def test_deviation_ok_gate(self):
        lst = random_list(60_000, rng=12)
        tr = Tracer()
        sublist_list_scan(lst, "sum", trace=tr, rng=12)
        assert deviation_ok(compare_trace(tr), rms_tol=0.1, decay_tol=0.7)
        report = compare_trace(tr)
        report.rms_rel_dev = 0.5
        assert not deviation_ok(report)
