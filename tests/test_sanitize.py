"""The concurrency & resource sanitizer suite (``repro.sanitize``).

Contracts under test:

* the vector-clock race detector reports exactly the unordered
  conflicting pairs — lock edges, queue/future handoffs and atomic
  reference swaps all suppress reports, back-to-back short-lived
  threads (recycled OS idents) do not;
* ``cv_wait`` keeps the lock model honest across the hidden
  release/reacquire inside ``Condition.wait``;
* the resource ledger sees every ``SharedMemory`` open/close/unlink
  while active and classifies leaks hard (segments, handles, lease
  bytes) vs soft (pools, memmaps);
* the loop watchdog files a stall when a coroutine blocks the loop;
* the engine runs a real batch under full instrumentation with zero
  findings — the "clean tree stays clean" half of the gate;
* ``repro-c90 sanitize`` exits 1 on the seeded violation corpus with
  every detector represented, 0 on clean code, 2 on usage errors.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main
from repro.engine import Engine, ScanRequest
from repro.lists.generate import random_list, random_values
from repro.sanitize import (
    LoopWatchdog,
    RaceDetector,
    ResourceLedger,
    annotate_access,
    atomic_read,
    atomic_write,
    cv_wait,
    guarded,
    hb_join,
    hb_publish,
    sanitizers,
)
from repro.sanitize.exercise import has_exercise, run_exercise

CORPUS = Path(__file__).parent / "fixtures" / "sanitize_bad"


def run_threads(*targets):
    threads = [threading.Thread(target=t) for t in targets]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


# ----------------------------------------------------------------------
# race detector
# ----------------------------------------------------------------------


class TestRaceDetector:
    def test_unordered_writes_race(self):
        with sanitizers() as state:
            run_threads(
                lambda: annotate_access("cell", "write"),
                lambda: annotate_access("cell", "write"),
            )
        (report,) = state.race_reports()
        assert report.cell == "cell"
        assert "unordered" in report.describe()

    def test_sequential_threads_still_race(self):
        """Recycled OS thread idents must not forge program order: the
        second thread often reuses the first's ident once it has been
        joined, yet the two writes stay unordered."""
        with sanitizers() as state:
            for _ in range(2):
                t = threading.Thread(target=lambda: annotate_access("cell", "write"))
                t.start()
                t.join()
        assert len(state.race_reports()) == 1

    def test_common_lock_suppresses_report(self):
        lock = threading.Lock()

        def locked_bump():
            with guarded(lock, "cell"):
                pass

        with sanitizers() as state:
            run_threads(locked_bump, locked_bump, locked_bump)
        assert state.race_reports() == []
        assert state.races.annotations == 3

    def test_read_write_race(self):
        with sanitizers() as state:
            run_threads(
                lambda: annotate_access("cell", "read"),
                lambda: annotate_access("cell", "write"),
            )
        (report,) = state.race_reports()
        kinds = {report.first_kind, report.second_kind}
        assert "write" in kinds

    def test_concurrent_reads_do_not_race(self):
        with sanitizers() as state:
            run_threads(
                lambda: annotate_access("cell", "read"),
                lambda: annotate_access("cell", "read"),
            )
        assert state.race_reports() == []

    def test_handoff_edge_orders_producer_before_consumer(self):
        def produce():
            annotate_access("payload", "write")
            hb_publish("chan")

        def consume():
            hb_join("chan")
            annotate_access("payload", "read")

        with sanitizers() as state:
            t = threading.Thread(target=produce)
            t.start()
            t.join()
            # producer finished before the consumer starts, but only the
            # publish/join edge tells the detector that
            consume()
        assert state.race_reports() == []

    def test_missing_join_races(self):
        def produce():
            annotate_access("payload", "write")
            hb_publish("chan")

        with sanitizers() as state:
            t = threading.Thread(target=produce)
            t.start()
            t.join()
            annotate_access("payload", "read")  # no hb_join("chan")
        assert len(state.race_reports()) == 1

    def test_atomic_swap_orders_without_report(self):
        def writer():
            annotate_access("routes", "write")
            atomic_write("router.state")

        def reader():
            atomic_read("router.state")
            annotate_access("routes", "read")

        with sanitizers() as state:
            t = threading.Thread(target=writer)
            t.start()
            t.join()
            reader()
        assert state.race_reports() == []

    def test_cv_wait_keeps_lock_model_honest(self):
        cv = threading.Condition()
        ready = threading.Event()

        def waiter():
            with guarded(cv, "shared"):
                ready.set()
                cv_wait(cv, timeout=5.0)

        def notifier():
            ready.wait(5.0)
            with guarded(cv, "shared"):
                cv.notify_all()

        with sanitizers() as state:
            run_threads(waiter, notifier)
        assert state.race_reports() == []

    def test_report_dedup_and_cap(self):
        detector = RaceDetector(max_reports=2)
        with sanitizers() as state:
            state.races = detector
            for _ in range(5):
                run_threads(
                    lambda: annotate_access("cell", "write"),
                    lambda: annotate_access("cell", "write"),
                )
        assert len(detector.reports) <= 2

    def test_inactive_hooks_are_noops(self):
        annotate_access("cell", "write")
        hb_publish("chan")
        hb_join("chan")
        atomic_write("cell")
        atomic_read("cell")

    def test_invalid_kind_rejected(self):
        detector = RaceDetector()
        with pytest.raises(ValueError, match="kind"):
            detector.access("cell", "mutate", "here")

    def test_nested_scopes_innermost_wins(self):
        with sanitizers() as outer:
            with sanitizers() as inner:
                run_threads(
                    lambda: annotate_access("cell", "write"),
                    lambda: annotate_access("cell", "write"),
                )
            assert len(inner.race_reports()) == 1
        assert outer.race_reports() == []


# ----------------------------------------------------------------------
# resource ledger
# ----------------------------------------------------------------------


class TestResourceLedger:
    def test_shm_segment_leak_detected(self):
        with sanitizers() as state:
            seg = shared_memory.SharedMemory(create=True, size=256)
            seg.close()
        try:
            kinds = [leak.kind for leak in state.leaks()]
            assert kinds == ["shm-segment"]
            assert state.failures()
        finally:
            cleanup = shared_memory.SharedMemory(name=seg.name)
            cleanup.close()
            cleanup.unlink()

    def test_clean_shm_lifecycle(self):
        with sanitizers() as state:
            seg = shared_memory.SharedMemory(create=True, size=256)
            seg.close()
            seg.unlink()
        assert state.leaks() == []

    def test_dangling_attach_is_handle_leak(self):
        with sanitizers() as state:
            seg = shared_memory.SharedMemory(create=True, size=256)
            other = shared_memory.SharedMemory(name=seg.name)
            seg.close()
            seg.unlink()
            # `other` never closed: a dangling fd/mapping
        kinds = [leak.kind for leak in state.leaks()]
        assert kinds == ["shm-handle"]
        other.close()

    def test_lease_bytes_leak_is_hard(self):
        ledger = ResourceLedger()
        ledger.lease_admitted(4096)
        kinds = [leak.kind for leak in ledger.segment_leaks()]
        assert kinds == ["lease-bytes"]
        ledger.lease_returned(4096)
        assert ledger.segment_leaks() == []

    def test_pool_leak_is_soft(self):
        ledger = ResourceLedger()
        marker = object()
        ledger.pool_opened(marker, "threads", "here")
        kinds = [leak.kind for leak in ledger.leaks()]
        assert kinds == ["pool"]
        assert ledger.segment_leaks() == []  # soft: warning, not failure
        ledger.pool_closed(marker)
        assert ledger.leaks() == []

    def test_memmap_close_witnessed_by_gc(self, tmp_path):
        path = tmp_path / "data.bin"
        path.write_bytes(b"\0" * 64)
        with sanitizers() as state:
            arr = np.memmap(path, dtype=np.uint8, mode="r")
            state.ledger.memmap_opened(arr, str(path), "r", "here")
            del arr  # finalizer runs during settle()'s gc pass
        assert state.leaks() == []

    def test_summary_counts(self):
        with sanitizers() as state:
            seg = shared_memory.SharedMemory(create=True, size=64)
            seg.close()
            seg.unlink()
        summary = state.summary()
        assert summary["events"] >= 3  # open + close + unlink
        assert summary["segments_tracked"] == 1
        assert summary["leaks"] == 0


# ----------------------------------------------------------------------
# loop watchdog
# ----------------------------------------------------------------------


class TestWatchdog:
    def test_blocking_coroutine_stalls(self):
        watchdog = LoopWatchdog(interval=0.01, threshold=0.05)

        async def scenario():
            watchdog.start()
            await asyncio.sleep(0.03)  # let the heartbeat settle
            time.sleep(0.2)  # block the loop
            await asyncio.sleep(0.03)  # let the late beat be measured
            watchdog.stop()

        asyncio.run(scenario())
        assert watchdog.stalls
        assert watchdog.stalls[0].stalled_for > 0.05
        assert "blocking" in watchdog.stalls[0].describe()

    def test_cooperative_loop_is_clean(self):
        watchdog = LoopWatchdog(interval=0.01, threshold=0.1)

        async def scenario():
            watchdog.start()
            for _ in range(10):
                await asyncio.sleep(0.01)
            watchdog.stop()

        asyncio.run(scenario())
        assert watchdog.stalls == []
        assert watchdog.beats > 0

    def test_injectable_clock(self):
        ticks = iter([0.0, 10.0])
        watchdog = LoopWatchdog(interval=0.0, threshold=0.5, clock=lambda: next(ticks))

        async def scenario():
            watchdog.start()
            await asyncio.sleep(0.02)
            watchdog.stop()

        asyncio.run(scenario())
        (stall,) = watchdog.stalls
        assert stall.stalled_for == pytest.approx(10.0)


# ----------------------------------------------------------------------
# engine under full instrumentation (the clean half of the gate)
# ----------------------------------------------------------------------


class TestEngineClean:
    def test_threaded_batch_has_no_findings(self):
        rng = np.random.default_rng(7)
        requests = [
            ScanRequest(
                random_list(512, rng, values=random_values(512, rng)),
                request_id=i,
            )
            for i in range(8)
        ]
        with sanitizers() as state:
            with Engine(executor="threads", max_workers=2) as engine:
                results = engine.run_batch(requests)
        assert len(results) == 8
        assert state.failures() == [], [f.message for f in state.failures()]
        assert state.races.annotations > 0, "instrumentation saw no accesses"
        assert state.engine_close_leaks == []

    def test_stats_snapshot_is_locked(self):
        rng = np.random.default_rng(11)
        requests = [
            ScanRequest(
                random_list(256, rng, values=random_values(256, rng)),
                request_id=i,
            )
            for i in range(4)
        ]
        with sanitizers() as state:
            with Engine(executor="sync") as engine:
                engine.run_batch(requests)
                snapshot = engine.stats_snapshot()
        assert snapshot["batches"] >= 1
        assert state.failures() == []


# ----------------------------------------------------------------------
# exercise runner + seeded corpus
# ----------------------------------------------------------------------


class TestExercise:
    def test_has_exercise(self, tmp_path):
        assert has_exercise(CORPUS / "race.py")
        plain = tmp_path / "plain.py"
        plain.write_text("x = 1\n", encoding="utf-8")
        assert not has_exercise(plain)

    def test_race_fixture_reports_race(self):
        result = run_exercise(CORPUS / "race.py")
        assert result.error is None
        assert [f.check for f in result.findings] == ["race"]

    def test_leak_fixture_reports_leak(self):
        result = run_exercise(CORPUS / "leak.py")
        assert result.error is None
        assert [f.check for f in result.findings] == ["leak"]
        assert "never unlinked" in result.findings[0].message

    def test_broken_fixture_becomes_error(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def exercise():\n    raise RuntimeError('boom')\n")
        result = run_exercise(bad)
        assert result.error is not None
        assert "boom" in result.error


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestSanitizeCli:
    def test_corpus_fails_with_every_detector(self, capsys):
        code = main(["sanitize", "--json", str(CORPUS)])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        static_rules = {d["rule"] for d in payload["static"]}
        assert "no-blocking-in-async" in static_rules
        assert "shm-unlink-all-paths" in static_rules
        dynamic = {f["check"] for d in payload["dynamic"] for f in d["findings"]}
        assert dynamic == {"race", "leak", "stall"}
        assert payload["errors"] >= 4
        assert payload["internal_errors"] == 0

    def test_clean_file_exits_zero(self, capsys, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n", encoding="utf-8")
        code = main(["sanitize", str(clean)])
        cap = capsys.readouterr()
        assert code == 0
        assert "clean" in cap.out

    def test_static_only_skips_dynamic(self, capsys):
        code = main(["sanitize", "--static-only", "--json", str(CORPUS)])
        assert code == 1  # static findings alone still fail
        payload = json.loads(capsys.readouterr().out)
        assert payload["dynamic"] == []

    def test_missing_path_is_usage_error(self, capsys):
        code = main(["sanitize", "definitely/not/a/path"])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_resource_wrapper_env(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        code = main(["tune", "-n", "4096"])
        cap = capsys.readouterr()
        assert code == 0
        assert "resource sanitizer clean" in cap.err
