"""Unit tests for the forest-scan primitive."""

import numpy as np
import pytest

from repro.core.forest import (
    forest_list_scan,
    forest_tails,
    serial_forest_scan,
    wyllie_forest_scan,
)
from repro.core.operators import AFFINE, MAX, SUM
from repro.lists.generate import INDEX_DTYPE


def make_forest(sizes, rng):
    """Disjoint chains over one shared node array, random layout."""
    total = int(sum(sizes))
    perm = rng.permutation(total)
    nxt = np.empty(total, dtype=INDEX_DTYPE)
    heads = []
    pos = 0
    for s in sizes:
        seg = perm[pos : pos + s]
        nxt[seg[:-1]] = seg[1:]
        nxt[seg[-1]] = seg[-1]
        heads.append(seg[0])
        pos += s
    return nxt, np.asarray(heads, dtype=INDEX_DTYPE)


@pytest.fixture
def forest5(rng):
    nxt, heads = make_forest([100, 3, 50, 1, 200], rng)
    values = rng.integers(-9, 9, nxt.shape[0])
    return nxt, heads, values


class TestForestTails:
    def test_tails_are_self_loops(self, forest5):
        nxt, heads, _ = forest5
        tails = forest_tails(nxt, heads)
        assert np.all(nxt[tails] == tails)

    def test_one_tail_per_list(self, forest5):
        nxt, heads, _ = forest5
        tails = forest_tails(nxt, heads)
        assert len(np.unique(tails)) == heads.size


class TestSerialForestScan:
    def test_each_list_scanned_independently(self, forest5):
        nxt, heads, values = forest5
        out = np.empty_like(values)
        serial_forest_scan(nxt, values, heads, SUM, None, out)
        for h in heads:
            assert out[h] == 0

    def test_carries_seed(self, forest5, rng):
        nxt, heads, values = forest5
        carries = rng.integers(-100, 100, heads.size)
        out = np.empty_like(values)
        serial_forest_scan(nxt, values, heads, SUM, carries, out)
        assert np.array_equal(out[heads], carries)


class TestWyllieForestScan:
    @pytest.mark.parametrize("sizes", [[1], [1, 1, 1], [5, 7], [64, 1, 33, 128]])
    def test_matches_serial(self, sizes, rng):
        nxt, heads = make_forest(sizes, rng)
        values = rng.integers(-9, 9, nxt.shape[0])
        ref = np.empty_like(values)
        serial_forest_scan(nxt, values, heads, SUM, None, ref)
        got = np.empty_like(values)
        wyllie_forest_scan(nxt, values, heads, SUM, None, got)
        assert np.array_equal(got, ref)

    def test_with_carries(self, forest5, rng):
        nxt, heads, values = forest5
        carries = rng.integers(-50, 50, heads.size)
        ref = np.empty_like(values)
        serial_forest_scan(nxt, values, heads, SUM, carries, ref)
        got = np.empty_like(values)
        wyllie_forest_scan(nxt, values, heads, SUM, carries, got)
        assert np.array_equal(got, ref)

    def test_affine(self, rng):
        nxt, heads = make_forest([40, 17, 90], rng)
        n = nxt.shape[0]
        values = np.stack(
            [rng.integers(1, 3, n), rng.integers(-4, 4, n)], axis=1
        ).astype(np.int64)
        ref = np.empty_like(values)
        serial_forest_scan(nxt, values, heads, AFFINE, None, ref)
        got = np.empty_like(values)
        wyllie_forest_scan(nxt, values, heads, AFFINE, None, got)
        assert np.array_equal(got, ref)


class TestForestListScan:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_forests(self, seed):
        rng = np.random.default_rng(seed)
        sizes = [int(rng.integers(1, 500)) for _ in range(int(rng.integers(1, 9)))]
        nxt, heads = make_forest(sizes, rng)
        values = rng.integers(-9, 9, nxt.shape[0])
        ref = np.empty_like(values)
        serial_forest_scan(nxt, values, heads, SUM, None, ref)
        got = forest_list_scan(
            nxt, values, heads, SUM, serial_cutoff=8, rng=rng
        )
        assert np.array_equal(got, ref)

    def test_restores_arrays(self, forest5, rng):
        nxt, heads, values = forest5
        bn, bv = nxt.copy(), values.copy()
        forest_list_scan(nxt, values, heads, SUM, serial_cutoff=8, rng=rng)
        assert np.array_equal(nxt, bn)
        assert np.array_equal(values, bv)

    def test_carries(self, forest5, rng):
        nxt, heads, values = forest5
        carries = rng.integers(-100, 100, heads.size)
        ref = np.empty_like(values)
        serial_forest_scan(nxt, values, heads, SUM, carries, ref)
        got = forest_list_scan(
            nxt, values, heads, SUM, carries=carries, serial_cutoff=8, rng=rng
        )
        assert np.array_equal(got, ref)

    def test_max_operator(self, forest5, rng):
        nxt, heads, values = forest5
        ref = np.empty_like(values)
        serial_forest_scan(nxt, values, heads, MAX, None, ref)
        got = forest_list_scan(nxt, values, heads, MAX, serial_cutoff=8, rng=rng)
        assert np.array_equal(got, ref)

    def test_inclusive(self, forest5, rng):
        nxt, heads, values = forest5
        excl = forest_list_scan(nxt, values, heads, SUM, serial_cutoff=8, rng=0)
        incl = forest_list_scan(
            nxt, values, heads, SUM, inclusive=True, serial_cutoff=8, rng=0
        )
        assert np.array_equal(incl, excl + values)

    def test_list_ids(self, forest5, rng):
        nxt, heads, values = forest5
        _, ids = forest_list_scan(
            nxt, values, heads, SUM, serial_cutoff=8, rng=rng,
            return_list_ids=True,
        )
        for k, h in enumerate(heads):
            cur = int(h)
            while True:
                assert ids[cur] == k
                succ = int(nxt[cur])
                if succ == cur:
                    break
                cur = succ

    def test_single_list_matches_sublist_scan(self, rng):
        from repro.baselines.serial import serial_list_scan
        from repro.lists.generate import random_list

        lst = random_list(3000, rng, values=rng.integers(-9, 9, 3000))
        got = forest_list_scan(
            lst.next, lst.values, np.asarray([lst.head]), SUM,
            serial_cutoff=8, rng=rng,
        )
        assert np.array_equal(got, serial_list_scan(lst))

    def test_rejects_empty_forest(self, rng):
        with pytest.raises(ValueError):
            forest_list_scan(
                np.zeros(1, dtype=INDEX_DTYPE),
                np.zeros(1, dtype=np.int64),
                np.empty(0, dtype=INDEX_DTYPE),
                SUM,
            )

    def test_rejects_bad_carries(self, forest5):
        nxt, heads, values = forest5
        with pytest.raises(ValueError, match="carries"):
            forest_list_scan(
                nxt, values, heads, SUM, carries=np.zeros(heads.size + 1)
            )
