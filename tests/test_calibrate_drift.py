"""Drift detection and the engine's recalibration loop.

Covers the detector as a pure bookkeeper (tolerance bands, consecutive
streaks, the auto-refit trigger, window bounds), the engine integration
(``drift_alerts``/``recalibrations`` counters, hot-swap via
``recalibrate``, drift-driven auto-refit from window telemetry), and a
lock-order-audited concurrency run mixing scans with mid-batch
recalibrations.
"""

import dataclasses
import threading

import numpy as np
import pytest

import repro.calibrate.drift as drift_mod
import repro.engine.cache as cache_mod
import repro.engine.engine as engine_mod
import repro.engine.workers as workers_mod
from repro.analysis.cost_model import PAPER_C90_COSTS
from repro.baselines.serial import serial_list_scan
from repro.calibrate import (
    CalibrationProfile,
    DriftConfig,
    DriftDetector,
    FitSample,
    fit_profile,
)
from repro.engine import Engine
from repro.lint.lockorder import instrumented_locks
from repro.lists.generate import random_list, random_values


def make_profile(serial_per_elem=1100.0, serial_const=2000.0, source="test"):
    """A synthetic fitted profile (host-ns units) without running a fit."""
    costs = dataclasses.replace(
        PAPER_C90_COSTS,
        serial_per_elem=serial_per_elem,
        serial_const=serial_const,
        clock_ns=1.0,
    )
    return CalibrationProfile(
        costs=costs,
        created_at=1.0,
        source=source,
        samples={"serial": 2},
        residuals={"serial": 0.0},
    )


def healthy_list(n, seed):
    rng = np.random.default_rng(seed)
    return random_list(n, rng, values=random_values(n, rng))


class TestDriftConfig:
    def test_defaults_are_valid(self):
        cfg = DriftConfig()
        assert cfg.tolerance == 3.0
        assert cfg.auto_refit_after == 0  # alerts only by default

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tolerance": 1.0},
            {"tolerance": 0.5},
            {"decay_tolerance": 0.0},
            {"decay_tolerance": 1.5},
            {"window": 0},
            {"auto_refit_after": -1},
            {"min_seconds": -1e-9},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            DriftConfig(**kwargs)


class TestDriftDetector:
    def test_no_alert_inside_tolerance(self):
        det = DriftDetector(DriftConfig(tolerance=3.0, min_seconds=0.0))
        for ratio in (0.5, 0.9, 1.0, 1.4, 2.9):
            verdict = det.observe_run("serial", 1000, 1e-3,
                                      predicted_ns=1e6 / ratio)
            assert not verdict.alert and not verdict.refit
            assert verdict.ratio == pytest.approx(ratio)
        snap = det.snapshot()
        assert snap["observations"] == 5
        assert snap["alerts"] == 0
        assert snap["consecutive"] == 0

    def test_alert_beyond_tolerance_both_sides(self):
        det = DriftDetector(DriftConfig(tolerance=2.0, min_seconds=0.0))
        slow = det.observe_run("serial", 1000, 1e-3, predicted_ns=1e6 / 2.5)
        assert slow.alert and slow.ratio == pytest.approx(2.5)
        fast = det.observe_run("serial", 1000, 1e-3, predicted_ns=1e6 * 2.5)
        assert fast.alert and fast.ratio == pytest.approx(0.4)
        assert det.snapshot()["alerts"] == 2

    def test_short_runs_and_bad_kinds_skipped(self):
        det = DriftDetector(DriftConfig(min_seconds=1e-4))
        assert det.observe_run("serial", 1000, 1e-6, 1e9) == drift_mod.DriftVerdict()
        assert det.observe_run("quantum", 1000, 1e-3, 1e9) == drift_mod.DriftVerdict()
        assert det.snapshot()["observations"] == 0

    def test_unpredicted_run_lands_in_window_without_judgement(self):
        det = DriftDetector(DriftConfig(min_seconds=0.0))
        verdict = det.observe_run("serial", 1000, 1e-3, predicted_ns=None)
        assert not verdict.alert and verdict.ratio is None
        snap = det.snapshot()
        assert snap["observations"] == 1 and snap["window"] == 1

    def test_clean_run_resets_consecutive_streak(self):
        cfg = DriftConfig(tolerance=2.0, auto_refit_after=3, min_seconds=0.0)
        det = DriftDetector(cfg)
        det.observe_run("serial", 1000, 1e-3, 1e5)  # drift
        det.observe_run("serial", 2000, 1e-3, 1e5)  # drift
        det.observe_run("serial", 3000, 1e-3, 1e6)  # clean: streak resets
        assert det.snapshot()["consecutive"] == 0
        verdict = det.observe_run("serial", 4000, 1e-3, 1e5)
        assert verdict.alert and not verdict.refit  # streak restarted at 1

    def test_auto_refit_after_k_consecutive(self):
        cfg = DriftConfig(tolerance=2.0, auto_refit_after=3, min_seconds=0.0)
        det = DriftDetector(cfg)
        verdicts = [
            det.observe_run("serial", 1000 * (i + 1), 1e-3, 1e5)
            for i in range(3)
        ]
        assert [v.refit for v in verdicts] == [False, False, True]
        snap = det.snapshot()
        assert snap["refits_signalled"] == 1
        assert snap["consecutive"] == 0  # streak resets on signal
        # window holds fit-ready samples for the recalibration
        samples = det.samples()
        assert len(samples) == 3
        assert all(isinstance(s, FitSample) and s.source == "drift"
                   for s in samples)

    def test_auto_refit_disabled_by_default(self):
        det = DriftDetector(DriftConfig(tolerance=2.0, min_seconds=0.0))
        for i in range(50):
            verdict = det.observe_run("serial", 1000 + i, 1e-3, 1e5)
            assert not verdict.refit
        assert det.snapshot()["refits_signalled"] == 0

    def test_decay_observation_tolerance_band(self):
        det = DriftDetector(DriftConfig(decay_tolerance=0.35))
        ok = det.observe_decay(observed=0.40, expected=0.37)
        assert not ok.alert
        bad = det.observe_decay(observed=0.90, expected=0.37)
        assert bad.alert
        snap = det.snapshot()
        assert snap["decay_alerts"] == 1
        assert snap["alerts"] == 1  # decay alerts share the alert count

    def test_decay_alerts_count_toward_refit_streak(self):
        cfg = DriftConfig(tolerance=2.0, decay_tolerance=0.2,
                          auto_refit_after=2, min_seconds=0.0)
        det = DriftDetector(cfg)
        det.observe_run("serial", 1000, 1e-3, 1e5)  # duration drift
        verdict = det.observe_decay(observed=0.9, expected=0.3)  # decay drift
        assert verdict.refit

    def test_window_is_bounded(self):
        det = DriftDetector(DriftConfig(window=4, min_seconds=0.0))
        for i in range(10):
            det.observe_run("serial", 100 + i, 1e-3, None)
        samples = det.samples()
        assert len(samples) == 4
        assert [s.x for s in samples] == [106, 107, 108, 109]  # oldest evicted

    def test_reset_drops_window_and_streak(self):
        cfg = DriftConfig(tolerance=2.0, auto_refit_after=5, min_seconds=0.0)
        det = DriftDetector(cfg)
        for i in range(3):
            det.observe_run("serial", 1000 + i, 1e-3, 1e5)
        det.reset()
        snap = det.snapshot()
        assert snap == {"observations": 0, "alerts": 0, "decay_alerts": 0,
                        "consecutive": 0, "refits_signalled": 0, "window": 0}

    def test_thread_safety_counters_reconcile(self):
        det = DriftDetector(DriftConfig(tolerance=2.0, min_seconds=0.0))
        per_thread = 200

        def feeder(t):
            for i in range(per_thread):
                # alternate clean/drifting so both paths run concurrently
                predicted = 1e6 if i % 2 else 1e5
                det.observe_run("serial", 1000 + t * per_thread + i,
                                1e-3, predicted)

        threads = [threading.Thread(target=feeder, args=(t,)) for t in range(4)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        snap = det.snapshot()
        assert snap["observations"] == 4 * per_thread
        assert snap["alerts"] == 4 * per_thread // 2


class TestEngineCalibration:
    def test_constructor_installs_profile_without_counting(self):
        profile = make_profile()
        with Engine(seed=1, calibration=profile) as engine:
            assert engine.calibration is profile
            assert engine.router.costs is profile.costs
            assert engine.stats.recalibrations == 0  # construction is free
            snap = engine.calibration_snapshot()
            assert snap["active"] and snap["source"] == "test"
            assert snap["drift"]["observations"] == 0

    def test_uncalibrated_snapshot_is_inactive(self):
        with Engine(seed=1) as engine:
            snap = engine.calibration_snapshot()
            assert snap == {"active": False}

    def test_recalibrate_counts_and_swaps(self):
        first = make_profile(source="first")
        second = make_profile(serial_per_elem=900.0, source="second")
        with Engine(seed=1, calibration=first) as engine:
            engine.recalibrate(second)
            assert engine.stats.recalibrations == 1
            assert engine.calibration.source == "second"
            assert engine.router.costs is second.costs

    def test_recalibrate_rejects_invalid_profile(self):
        bad = dataclasses.replace(make_profile(), samples={})
        with Engine(seed=1) as engine:
            with pytest.raises(ValueError):
                engine.recalibrate(bad)
            assert engine.calibration is None

    def test_real_scan_beyond_tolerance_raises_drift_alert(self):
        # serial predicted at 0.01 ns/node: any real Python pointer
        # chase is orders of magnitude slower, so the run must alert
        profile = make_profile(serial_per_elem=0.01, serial_const=1.0)
        cfg = DriftConfig(tolerance=3.0, min_seconds=0.0)
        with Engine(seed=1, calibration=profile, drift=cfg) as engine:
            lst = healthy_list(5000, seed=3)
            assert engine.router.choose(5000) == "serial"
            got = engine.scan(lst)
            assert np.array_equal(got, serial_list_scan(lst))
            assert engine.stats.drift_alerts >= 1
            snap = engine.calibration_snapshot()
            assert snap["drift"]["alerts"] >= 1

    def test_static_table_never_drift_checked(self):
        with Engine(seed=1) as engine:
            lst = healthy_list(5000, seed=3)
            engine.scan(lst)
            engine.observe_deviation(0.9, 0.1)  # no detector: no-op
            assert engine.stats.drift_alerts == 0

    def test_observe_deviation_feeds_detector(self):
        cfg = DriftConfig(decay_tolerance=0.2)
        with Engine(seed=1, calibration=make_profile(), drift=cfg) as engine:
            engine.observe_deviation(observed=0.35, expected=0.30)
            assert engine.stats.drift_alerts == 0
            engine.observe_deviation(observed=0.95, expected=0.30)
            assert engine.stats.drift_alerts == 1

    def test_auto_refit_refits_from_window_telemetry(self):
        profile = make_profile(serial_per_elem=1000.0, serial_const=0.0)
        cfg = DriftConfig(tolerance=3.0, auto_refit_after=2, min_seconds=0.0)
        with Engine(seed=1, calibration=profile, drift=cfg) as engine:
            # two consecutive serial runs observed 10x slower than the
            # profile predicts (distinct sizes so the refit is solvable)
            for n in (10_000, 20_000):
                predicted = engine.router.predicted_clocks(n, "serial")
                engine._observe_execution(
                    "serial", n, 1, predicted * 10 * 1e-9, epoch=engine._drift
                )
            assert engine.stats.drift_alerts == 2
            assert engine.stats.recalibrations == 1
            fresh = engine.calibration
            assert fresh is not profile
            assert fresh.source == "auto-refit"
            # the refit profile tracks the observed (10x slower) rate
            assert fresh.costs.serial_per_elem == pytest.approx(10_000.0, rel=0.05)
            assert engine.router.costs is fresh.costs
            # the new detector starts with a clean window
            assert engine.calibration_snapshot()["drift"]["window"] == 0

    def test_auto_refit_survives_unfittable_window(self):
        profile = make_profile(serial_per_elem=1000.0, serial_const=0.0)
        cfg = DriftConfig(tolerance=3.0, auto_refit_after=2, min_seconds=0.0)
        with Engine(seed=1, calibration=profile, drift=cfg) as engine:
            # same x twice: degenerate design, the refit must fail
            # quietly and keep the current profile serving
            for _ in range(2):
                engine._observe_execution(
                    "serial", 10_000, 1, 1e-1, epoch=engine._drift
                )
            assert engine.stats.drift_alerts == 2
            assert engine.stats.recalibrations == 0
            assert engine.calibration is profile

    def test_recalibrate_clears_window_and_discards_stale_epochs(self):
        """Installing a new profile must retire the old rolling window.

        Samples timed under profile A's cost table that complete after
        profile B is installed carry A-epoch timings; feeding them to
        B's detector would seed the fresh window with stale data and
        could fire a spurious alert/auto-refit immediately after the
        swap.  The epoch guard discards them instead.
        """
        profile_a = make_profile(serial_per_elem=1000.0, source="a")
        profile_b = make_profile(serial_per_elem=900.0, source="b")
        cfg = DriftConfig(tolerance=3.0, auto_refit_after=2, min_seconds=0.0)
        with Engine(seed=1, calibration=profile_a, drift=cfg) as engine:
            # seed the rolling window with one out-of-tolerance sample
            epoch_a = engine._drift
            predicted = engine.router.predicted_clocks(10_000, "serial")
            slow = predicted * 10 * 1e-9
            engine._observe_execution("serial", 10_000, 1, slow, epoch=epoch_a)
            assert engine.stats.drift_alerts == 1
            assert engine.calibration_snapshot()["drift"]["window"] == 1
            engine.recalibrate(profile_b)
            assert engine.stats.recalibrations == 1
            # the new profile starts with a clean window and streak
            snap = engine.calibration_snapshot()["drift"]
            assert snap["window"] == 0
            assert snap["consecutive"] == 0
            # an A-epoch run finishing late is discarded, not judged
            # against B — one more such sample would otherwise hit
            # auto_refit_after=2 and trigger a spurious refit
            engine._observe_execution("serial", 20_000, 1, slow, epoch=epoch_a)
            snap = engine.calibration_snapshot()["drift"]
            assert snap["window"] == 0
            assert engine.stats.drift_alerts == 1
            assert engine.stats.recalibrations == 1
            assert engine.calibration is profile_b
            # a B-epoch run is judged normally against the new table
            engine._observe_execution(
                "serial", 20_000, 1, slow, epoch=engine._drift
            )
            assert engine.calibration_snapshot()["drift"]["window"] == 1


class TestRecalibrateConcurrency:
    def test_scans_race_recalibrations_lock_audited(self):
        """Hot-swaps mid-batch: correctness + deadlock-freedom.

        Engine and drift locks are instrumented; worker threads hammer
        scans while the main thread flips between two profiles.  Every
        response must still match the serial reference, and the lock
        acquisition graph must stay acyclic.
        """
        profiles = [
            make_profile(serial_per_elem=1100.0, source="a"),
            make_profile(serial_per_elem=0.5, serial_const=1.0, source="b"),
        ]
        cfg = DriftConfig(tolerance=1e9, min_seconds=0.0)  # observe, never alert
        with instrumented_locks(
            engine_mod, workers_mod, cache_mod, drift_mod
        ) as graph:
            with Engine(executor="threads", max_workers=4, seed=13,
                        calibration=profiles[0], drift=cfg) as engine:
                stop = threading.Event()
                errors = []

                def scanner(t):
                    try:
                        for i in range(10):
                            lst = healthy_list(400 + 37 * t + i, seed=t * 100 + i)
                            got = engine.scan(lst)
                            expect = serial_list_scan(lst)
                            if not np.array_equal(got, expect):
                                errors.append((t, i))
                    finally:
                        stop.set()

                threads = [threading.Thread(target=scanner, args=(t,))
                           for t in range(4)]
                for th in threads:
                    th.start()
                flips = 0
                while not stop.is_set():
                    engine.recalibrate(profiles[flips % 2])
                    flips += 1
                for th in threads:
                    th.join()
                assert not errors
                assert engine.stats.recalibrations == flips
                assert engine.calibration in profiles
        assert graph.acquisitions > 0
        graph.assert_acyclic()
