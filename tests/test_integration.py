"""Cross-module integration tests: full pipelines chaining several
subsystems, plus dtype coverage."""

import numpy as np
import pytest

from repro import (
    AFFINE,
    LinkedList,
    ScanStats,
    SublistConfig,
    list_rank,
    list_scan,
    partition_list,
    random_list,
    random_parent_tree,
    scan_via_reorder,
    serial_list_scan,
    sublist_scan_sim,
    validate_list_strict,
    wyllie_scan_sim,
)
from repro.apps.load_balance import partition_summary
from repro.core.segmented import segmented_list_scan
from repro.lists.generate import from_order, list_order
from repro.lists.mutate import concatenate, split_after


class TestFullPipelines:
    def test_tree_workload_through_simulator(self, rng):
        """Euler-tour list of a random tree, scanned on the simulated
        C-90 — irregular real-application input for the machine model."""
        from repro.apps.euler_tour import build_euler_tour

        parent = random_parent_tree(5000, rng)
        et = build_euler_tour(parent)
        tour = LinkedList(
            et.tour.next, et.tour.head, np.ones(et.tour.n, dtype=np.int64)
        )
        res = sublist_scan_sim(tour, rng=rng)
        assert np.array_equal(res.out, serial_list_scan(tour))
        res_w = wyllie_scan_sim(tour)
        assert np.array_equal(res_w.out, serial_list_scan(tour))

    def test_rank_then_balance_then_verify(self, rng):
        """Ranking feeds partitioning; chunk boundaries respect both
        contiguity and weight balance."""
        n = 30_000
        lst = random_list(n, rng, values=rng.integers(1, 50, n))
        owner = partition_list(lst, 8, rng=rng)
        summary = partition_summary(lst, owner, 8)
        assert summary["imbalance"] < 1.02
        order = list_order(lst)
        assert np.all(np.diff(owner[order]) >= 0)

    def test_split_scan_pieces_equals_segmented(self, rng):
        """Splitting the list and scanning each piece separately equals
        the segmented scan of the intact list."""
        n = 4000
        lst = random_list(n, rng, values=rng.integers(-9, 9, n))
        order = list_order(lst)
        cut_nodes = order[[999, 1999, 2999]]
        pieces = split_after(lst, cut_nodes)
        seg_heads = order[[1000, 2000, 3000]]
        seg = segmented_list_scan(lst, seg_heads, rng=rng)
        for piece, ids in pieces:
            piece_scan = serial_list_scan(piece)
            assert np.array_equal(piece_scan, seg[ids])

    def test_concat_scan_equals_chained_scans(self, rng):
        a = random_list(500, rng, values=rng.integers(-9, 9, 500))
        b = random_list(300, rng, values=rng.integers(-9, 9, 300))
        combined, offsets = concatenate([a, b])
        out = list_scan(combined, rng=rng)
        order_a, order_b = list_order(a), list_order(b)
        # piece a is scanned as usual (compare along list order)
        assert np.array_equal(
            out[order_a], serial_list_scan(a)[order_a]
        )
        # piece b continues with a's total as carry
        carry = a.values.sum()
        assert np.array_equal(
            out[order_b + offsets[1]], serial_list_scan(b)[order_b] + carry
        )

    def test_reorder_roundtrip_through_all_algorithms(self, rng):
        n = 2000
        lst = random_list(n, rng, values=rng.integers(-9, 9, n))
        expect = serial_list_scan(lst)
        for algorithm in ("wyllie", "sublist", "early_reconnect"):
            got = scan_via_reorder(lst, algorithm=algorithm, rng=rng)
            assert np.array_equal(got, expect), algorithm

    def test_stats_flow_through_dispatch(self, rng):
        lst = random_list(20_000, rng)
        stats = ScanStats()
        list_rank(lst, stats=stats, rng=rng)
        assert stats.element_ops > 20_000
        assert stats.packs > 0


class TestDtypeCoverage:
    @pytest.mark.parametrize(
        "dtype", [np.int32, np.int64, np.float32, np.float64]
    )
    def test_sublist_scan_dtypes(self, dtype, rng):
        n = 3000
        if np.issubdtype(dtype, np.integer):
            vals = rng.integers(-9, 9, n).astype(dtype)
        else:
            vals = rng.random(n).astype(dtype)
        lst = random_list(n, rng, values=vals)
        got = list_scan(lst, rng=rng)
        expect = serial_list_scan(lst)
        if np.issubdtype(dtype, np.integer):
            assert np.array_equal(got, expect)
        else:
            assert np.allclose(got, expect, rtol=1e-5)
        assert got.dtype == dtype

    def test_affine_float(self, rng):
        n = 2000
        vals = np.stack(
            [rng.uniform(0.9, 1.1, n), rng.uniform(-0.5, 0.5, n)], axis=1
        )
        lst = from_order(rng.permutation(n), vals)
        got = list_scan(lst, AFFINE, rng=rng)
        assert np.allclose(got, serial_list_scan(lst, AFFINE), rtol=1e-9)

    def test_int32_overflow_not_masked(self, rng):
        """Scans preserve the input dtype; the library does not silently
        upcast (documented behaviour)."""
        n = 100
        lst = random_list(n, rng, values=np.ones(n, dtype=np.int32))
        got = list_scan(lst, rng=rng)
        assert got.dtype == np.int32


class TestConfigInteractions:
    def test_tiny_lists_each_algorithm(self, rng):
        for n in (1, 2, 3):
            lst = random_list(n, rng, values=rng.integers(-5, 5, n))
            expect = serial_list_scan(lst)
            for algorithm in (
                "sublist",
                "wyllie",
                "random_mate",
                "anderson_miller",
                "early_reconnect",
            ):
                got = list_scan(lst, algorithm=algorithm, rng=rng)
                assert np.array_equal(got, expect), (n, algorithm)

    def test_validate_then_scan(self, rng):
        lst = random_list(1000, rng)
        validate_list_strict(lst)
        ranks = list_rank(lst, validate=True, rng=rng)
        assert sorted(ranks) == list(range(1000))

    def test_simulator_and_host_agree(self, rng):
        """The cycle-accounted backend computes the same values as the
        host backend (they share nothing but the algorithm)."""
        n = 30_000
        lst = random_list(n, rng, values=rng.integers(-9, 9, n))
        host = list_scan(lst, config=SublistConfig(m=500, s1=10.0), rng=0)
        sim = sublist_scan_sim(lst, rng=0)
        assert np.array_equal(host, sim.out)
