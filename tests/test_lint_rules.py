"""Table-driven tests for the project lint rules and the
suppression machinery.

Each rule gets (at least) one *bad* snippet that must produce exactly
that rule's diagnostic and one *good* snippet — the idiom the rule is
designed to allow — that must come back clean.  The paths are chosen to
match each rule's applicability globs (``engine/``, ``core/``, …).
A Hypothesis property then checks the suppression invariant: a
suppressed run reports exactly the unsuppressed diagnostics minus the
suppressed ones.
"""

from __future__ import annotations

import textwrap

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint import all_rules, get_rule, lint_source, rule_names
from repro.lint.suppress import UNUSED_SUPPRESSION

EXPECTED_RULES = [
    "explicit-dtype",
    "fingerprint-keyed-cache",
    "injectable-clock",
    "lock-guard-inference",
    "lock-with-only",
    "no-blocking-in-async",
    "no-fork",
    "shm-lifecycle",
    "shm-unlink-all-paths",
]


def run(source: str, path: str, **kwargs) -> list:
    return lint_source(textwrap.dedent(source), path, **kwargs)


def rules_of(diagnostics) -> list[str]:
    return [d.rule for d in diagnostics]


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


def test_registry_has_the_project_rules():
    assert rule_names() == EXPECTED_RULES


def test_every_rule_has_name_rationale_and_hint():
    for rule in all_rules():
        assert rule.name
        assert rule.rationale
        assert rule.hint


def test_get_rule_unknown_name_lists_known_rules():
    with pytest.raises(KeyError, match="no-fork"):
        get_rule("definitely-not-a-rule")


# ---------------------------------------------------------------------------
# table-driven rule cases
# ---------------------------------------------------------------------------

# (rule, path the snippet pretends to live at, bad snippet, good snippet)
CASES = [
    (
        "no-fork",
        "src/repro/engine/workers.py",
        """
        import multiprocessing as mp
        ctx = mp.get_context("fork")
        """,
        """
        import multiprocessing as mp
        ctx = mp.get_context("forkserver")
        """,
    ),
    (
        "no-fork",
        "src/repro/engine/workers.py",
        """
        from concurrent.futures import ProcessPoolExecutor
        pool = ProcessPoolExecutor(mp_context="fork")
        """,
        """
        from concurrent.futures import ProcessPoolExecutor
        pool = ProcessPoolExecutor(mp_context="spawn")
        """,
    ),
    (
        "shm-lifecycle",
        "src/repro/engine/transport.py",
        """
        from multiprocessing import shared_memory

        def leak(n):
            shm = shared_memory.SharedMemory(create=True, size=n)
            return shm.name
        """,
        """
        from multiprocessing import shared_memory

        def careful(n):
            shm = shared_memory.SharedMemory(create=True, size=n)
            try:
                return bytes(shm.buf)
            finally:
                shm.close()
                shm.unlink()
        """,
    ),
    (
        "shm-lifecycle",
        "src/repro/engine/transport.py",
        """
        from multiprocessing import shared_memory

        def no_owner(n):
            shared_memory.SharedMemory(create=True, size=n)
        """,
        # ownership transfer to a lease list the caller releases
        """
        from multiprocessing import shared_memory

        def export(n, leases):
            shm = shared_memory.SharedMemory(create=True, size=n)
            leases.append(shm)
            return shm.name
        """,
    ),
    (
        "lock-with-only",
        "src/repro/engine/anywhere.py",
        """
        import threading
        lock = threading.Lock()

        def bump():
            lock.acquire()
            lock.release()
        """,
        """
        import threading
        lock = threading.Lock()

        def bump():
            with lock:
                pass
        """,
    ),
    (
        "injectable-clock",
        "src/repro/core/timer.py",
        """
        import time

        def stamp():
            return time.perf_counter()
        """,
        # referencing the function as a default is the blessed pattern
        """
        import time

        def stamp(clock=time.perf_counter):
            return clock()
        """,
    ),
    (
        "injectable-clock",
        "src/repro/trace/timer.py",
        """
        from time import monotonic

        def stamp():
            return monotonic()
        """,
        """
        from time import monotonic

        def stamp(clock=monotonic):
            return clock()
        """,
    ),
    (
        "explicit-dtype",
        "src/repro/core/kernel.py",
        """
        import numpy as np

        def ws(n):
            return np.empty(n)
        """,
        """
        import numpy as np

        def ws(n):
            return np.empty(n, dtype=np.float64)
        """,
    ),
    (
        "explicit-dtype",
        "src/repro/engine/workers.py",
        """
        import numpy as np
        a = np.arange(10)
        """,
        # positional dtype is accepted too
        """
        import numpy as np
        a = np.arange(0, 10, 1, np.int64)
        """,
    ),
    (
        "fingerprint-keyed-cache",
        "src/repro/engine/service.py",
        """
        def lookup(cache, lst, op):
            return cache.get((lst.n, op.name))
        """,
        """
        from repro.engine.cache import fingerprint

        def lookup(cache, lst, op):
            key = fingerprint(lst, op, False, "auto")
            return cache.get(key)
        """,
    ),
    (
        "fingerprint-keyed-cache",
        "src/repro/engine/service.py",
        """
        def put(self, result):
            self.cache.put(self.make_key(result), result)
        """,
        # keys stored into a container from a blessed name are blessed
        """
        from repro.engine.cache import fingerprint

        def put(self, cache, reqs, results):
            keys = {}
            for req in reqs:
                key = fingerprint(req.lst, req.op, False, "auto")
                keys[req.request_id] = key
            for req, result in zip(reqs, results):
                cache.put(keys[req.request_id], result)
        """,
    ),
    (
        "no-blocking-in-async",
        "src/repro/serve/handlers.py",
        """
        import time

        async def handler(payload):
            time.sleep(0.1)
            return payload
        """,
        """
        import asyncio

        async def handler(payload):
            await asyncio.sleep(0.1)
            return payload
        """,
    ),
    (
        "no-blocking-in-async",
        "src/repro/serve/handlers.py",
        """
        import time

        def warm_up():
            time.sleep(0.2)

        async def handler(payload):
            warm_up()
            return payload
        """,
        """
        import asyncio
        import time

        def warm_up():
            time.sleep(0.2)

        async def handler(payload):
            await asyncio.to_thread(warm_up)
            return payload
        """,
    ),
    (
        "shm-unlink-all-paths",
        "src/repro/engine/transport.py",
        """
        from multiprocessing import shared_memory

        def export(data, validate):
            shm = shared_memory.SharedMemory(create=True, size=len(data))
            validate(data)
            try:
                return shm.name
            finally:
                shm.close()
                shm.unlink()
        """,
        """
        from multiprocessing import shared_memory

        def export(data, validate):
            validate(data)
            shm = shared_memory.SharedMemory(create=True, size=len(data))
            try:
                return shm.name
            finally:
                shm.close()
                shm.unlink()
        """,
    ),
    (
        "lock-guard-inference",
        "src/repro/engine/stats.py",
        """
        import threading

        class Stats:
            def __init__(self):
                self._lock = threading.Lock()
                self.completed = 0

            def record(self, n):
                with self._lock:
                    self.completed += n

            def reset(self):
                self.completed = 0
        """,
        """
        import threading

        class Stats:
            def __init__(self):
                self._lock = threading.Lock()
                self.completed = 0

            def record(self, n):
                with self._lock:
                    self.completed += n

            def reset(self):
                with self._lock:
                    self.completed = 0
        """,
    ),
]


@pytest.mark.parametrize(
    "rule,path,bad,good",
    CASES,
    ids=[f"{c[0]}-{i}" for i, c in enumerate(CASES)],
)
def test_rule_flags_bad_and_allows_good(rule, path, bad, good):
    bad_diags = run(bad, path)
    assert rule in rules_of(bad_diags), f"{rule} missed its bad snippet"
    assert set(rules_of(bad_diags)) == {rule}, "unexpected extra findings"
    assert all(d.hint for d in bad_diags)
    good_diags = run(good, path)
    assert good_diags == [], f"{rule} flagged the blessed idiom: {good_diags}"


def test_path_scoping_keeps_scoped_rules_out_of_other_trees():
    # wall-clock calls are only a finding in core/engine/trace modules
    snippet = """
    import time
    t = time.time()
    """
    assert rules_of(run(snippet, "src/repro/core/x.py")) == ["injectable-clock"]
    assert run(snippet, "src/repro/bench/x.py") == []
    # fork is only forbidden under engine/
    fork = """
    import multiprocessing as mp
    ctx = mp.get_context("fork")
    """
    assert rules_of(run(fork, "src/repro/engine/x.py")) == ["no-fork"]
    assert run(fork, "src/repro/bench/x.py") == []


def test_serve_tree_carries_clock_and_lock_rules():
    # the serving front-end's latency accounting must stay deterministic
    # under injected clocks, exactly like core/engine/trace ...
    snippet = """
    import time
    t = time.perf_counter()
    """
    assert rules_of(run(snippet, "src/repro/serve/server.py")) == [
        "injectable-clock"
    ]
    # ... and the (unscoped) lock hygiene rule reaches it too
    locky = """
    def f(lock):
        lock.acquire()
        work()
        lock.release()
    """
    assert "lock-with-only" in rules_of(run(locky, "src/repro/serve/server.py"))


def test_cache_module_itself_is_exempt_from_cache_key_rule():
    snippet = """
    def get(self, key):
        return self._entries.get(key)
    """
    assert run(snippet, "src/repro/engine/cache.py") == []


def test_parse_error_becomes_a_diagnostic():
    diags = run("def broken(:\n", "src/repro/engine/x.py")
    assert rules_of(diags) == ["parse-error"]


# ---------------------------------------------------------------------------
# suppressions
# ---------------------------------------------------------------------------

BAD_LOCK = """
import threading
lock = threading.Lock()

def bump():
    lock.acquire(){marker}
    lock.release(){marker}
"""


def test_inline_suppression_silences_the_rule():
    marker = "  # repolint: disable=lock-with-only"
    diags = run(BAD_LOCK.format(marker=marker), "src/x.py")
    assert diags == []


def test_whole_line_suppression_covers_next_code_line():
    src = """
    import threading
    lock = threading.Lock()

    def bump():
        # repolint: disable=lock-with-only
        lock.acquire()
        lock.release()  # repolint: disable=lock-with-only
    """
    assert run(src, "src/x.py") == []


def test_suppressing_a_different_rule_does_not_silence():
    marker = "  # repolint: disable=no-fork"
    diags = run(BAD_LOCK.format(marker=marker), "src/x.py")
    rules = rules_of(diags)
    assert rules.count("lock-with-only") == 2
    # and both useless markers are reported as unused
    assert rules.count(UNUSED_SUPPRESSION) == 2


def test_unused_suppression_is_reported_and_can_be_disabled():
    src = """
    x = 1  # repolint: disable=lock-with-only
    """
    assert rules_of(run(src, "src/x.py")) == [UNUSED_SUPPRESSION]
    assert run(src, "src/x.py", check_unused=False) == []


def test_unused_check_ignores_rules_outside_the_selected_set():
    # a no-fork suppression is not "unused" when no-fork never ran
    src = """
    import multiprocessing as mp
    ctx = mp.get_context("fork")  # repolint: disable=no-fork
    """
    diags = run(
        src, "src/repro/engine/x.py", rules=[get_rule("lock-with-only")]
    )
    assert diags == []


def test_marker_inside_string_literal_is_not_a_suppression():
    src = '''
    import threading
    lock = threading.Lock()

    def bump():
        doc = "# repolint: disable=lock-with-only"
        lock.acquire()
        lock.release()  # repolint: disable=lock-with-only
        return doc
    '''
    assert rules_of(run(src, "src/x.py")) == ["lock-with-only"]


# ---------------------------------------------------------------------------
# Hypothesis property: suppressed == unsuppressed minus suppressed
# ---------------------------------------------------------------------------

_VIOLATIONS = [
    "lock.acquire()",
    "lock.release()",
    'ctx = mp.get_context("fork")',
    "arr = np.zeros(4)",
    "t = time.perf_counter()",
]

_HEADER = (
    "import threading\n"
    "import multiprocessing as mp\n"
    "import numpy as np\n"
    "import time\n"
    "lock = threading.Lock()\n"
)


@settings(max_examples=60, deadline=None)
@given(
    picks=st.lists(
        st.sampled_from(range(len(_VIOLATIONS))), min_size=1, max_size=6
    ),
    suppress_mask=st.lists(st.booleans(), min_size=6, max_size=6),
)
def test_suppression_property(picks, suppress_mask):
    """Suppressed runs report exactly the unsuppressed diagnostics minus
    those on suppressed lines."""
    path = "src/repro/engine/x.py"
    plain_lines, marked_lines = [], []
    for i, pick in enumerate(picks):
        stmt = _VIOLATIONS[pick]
        plain_lines.append(stmt)
        if suppress_mask[i]:
            marked_lines.append(stmt + "  # repolint: disable=" + ",".join(rule_names()))
        else:
            marked_lines.append(stmt)
    plain = _HEADER + "\n".join(plain_lines) + "\n"
    marked = _HEADER + "\n".join(marked_lines) + "\n"

    base = lint_source(plain, path, check_unused=False)
    got = lint_source(marked, path, check_unused=False)

    suppressed_lines = {
        len(_HEADER.splitlines()) + 1 + i
        for i in range(len(picks))
        if suppress_mask[i]
    }
    expected = [d for d in base if d.line not in suppressed_lines]
    assert [(d.line, d.rule) for d in got] == [
        (d.line, d.rule) for d in expected
    ]
