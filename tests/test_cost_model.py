"""Unit tests for the kernel cost model (paper Sections 3 and 4.2)."""

import pytest

from repro.analysis.cost_model import (
    CLOCK_NS_C90,
    KernelCosts,
    PAPER_C90_COSTS,
    phase13_time_closed_form,
    phase13_time_from_schedule,
    phase2_time,
    total_time,
)
from repro.core.schedule import optimal_schedule


class TestPaperConstants:
    """The combined coefficients the paper derives in Section 4.2."""

    def test_combined_rank_slope(self):
        assert PAPER_C90_COSTS.a == pytest.approx(8.4)

    def test_combined_rank_const(self):
        assert PAPER_C90_COSTS.b == pytest.approx(180.0)

    def test_combined_pack_slope(self):
        assert PAPER_C90_COSTS.c == pytest.approx(13.0)

    def test_combined_pack_const(self):
        assert PAPER_C90_COSTS.d == pytest.approx(940.0)

    def test_combined_bookkeeping_slope(self):
        assert PAPER_C90_COSTS.e == pytest.approx(26.0)

    def test_combined_bookkeeping_const(self):
        assert PAPER_C90_COSTS.f == pytest.approx(9720.0)

    def test_clock(self):
        assert CLOCK_NS_C90 == pytest.approx(4.2)

    def test_kernel_equations(self):
        c = PAPER_C90_COSTS
        assert c.t_initialize(100) == pytest.approx(13 * 100 + 8700)
        assert c.t_initial_rank_step(1000) == pytest.approx(3.4 * 1000 + 80)
        assert c.t_initial_pack(1000) == pytest.approx(7 * 1000 + 540)
        assert c.t_find_sublist_list(100) == pytest.approx(9 * 100 + 770)
        assert c.t_final_rank_step(1000) == pytest.approx(5 * 1000 + 100)
        assert c.t_final_pack(1000) == pytest.approx(6 * 1000 + 400)
        assert c.t_restore(100) == pytest.approx(4 * 100 + 250)
        assert c.t_serial(100) == pytest.approx(34 * 100 + 255)

    def test_scale(self):
        doubled = PAPER_C90_COSTS.scale(2.0)
        assert doubled.a == pytest.approx(2 * PAPER_C90_COSTS.a)
        assert doubled.f == pytest.approx(2 * PAPER_C90_COSTS.f)

    def test_wyllie_rounds_cost(self):
        c = PAPER_C90_COSTS
        assert c.t_wyllie(1) == 0.0
        # 1024-node list: 10 rounds
        assert c.t_wyllie(1024) == pytest.approx(
            10 * (c.wyllie_round_per_elem * 1024 + c.wyllie_round_const)
        )


class TestPhase13:
    def test_schedule_sum_positive(self):
        sch = optimal_schedule(10_000, 200, 14.7)
        assert phase13_time_from_schedule(10_000, 200, sch) > 0

    def test_more_processors_faster(self):
        sch = optimal_schedule(100_000, 1000, 20.0)
        t1 = phase13_time_from_schedule(100_000, 1000, sch, n_processors=1)
        t8 = phase13_time_from_schedule(100_000, 1000, sch, n_processors=8)
        assert t8 < t1
        # constants don't parallelize, so speedup is sublinear
        assert t1 / t8 < 8.0

    def test_closed_form_tracks_schedule_sum(self):
        """Eq. 7 ≈ Eq. 3/4 at the optimal schedule (the paper derives
        one from the other)."""
        n, m, s1 = 1_000_000, 5000, 40.0
        sch = optimal_schedule(n, m, s1)
        t_sum = phase13_time_from_schedule(n, m, sch)
        t_closed = phase13_time_closed_form(n, m, s1, len(sch))
        assert t_closed == pytest.approx(t_sum, rel=0.15)

    def test_rank_work_dominates_large_n(self):
        """For large n the 8.4·n term dominates Phases 1+3."""
        n, m = 10_000_000, 30_000
        sch = optimal_schedule(n, m, 50.0)
        t = phase13_time_from_schedule(n, m, sch)
        assert t == pytest.approx(8.4 * n, rel=0.35)

    def test_rejects_nonincreasing_schedule(self):
        with pytest.raises(ValueError, match="increasing"):
            phase13_time_from_schedule(1000, 10, [5.0, 5.0])

    def test_rejects_bad_processors(self):
        with pytest.raises(ValueError):
            phase13_time_from_schedule(1000, 10, [5.0], n_processors=0)


class TestPhase2:
    def test_serial_regime(self):
        t = phase2_time(100)
        assert t == pytest.approx(PAPER_C90_COSTS.t_serial(100))

    def test_wyllie_regime(self):
        t = phase2_time(10_000)
        assert t == pytest.approx(PAPER_C90_COSTS.t_wyllie(10_000))

    def test_recursive_regime(self):
        t = phase2_time(1_000_000)
        assert t > phase2_time(65_536)

    def test_total_includes_both(self):
        n, m = 100_000, 1000
        sch = optimal_schedule(n, m, 20.0)
        assert total_time(n, m, sch) == pytest.approx(
            phase13_time_from_schedule(n, m, sch) + phase2_time(m)
        )


class TestCustomCosts:
    def test_kernel_costs_is_hashable(self):
        {PAPER_C90_COSTS: 1}  # lru_cache in tuning relies on this

    def test_custom_instance(self):
        c = KernelCosts(initial_rank_per_elem=10.0)
        assert c.a == pytest.approx(15.0)
