"""Unit tests for the linked-list generators."""

import numpy as np
import pytest

from repro.lists.generate import (
    INDEX_DTYPE,
    LinkedList,
    blocked_list,
    from_order,
    list_order,
    ordered_list,
    pathological_bank_list,
    random_list,
    random_values,
    reversed_list,
    unit_values,
)
from repro.lists.validate import validate_list_strict


class TestLinkedList:
    def test_defaults_unit_values(self):
        lst = ordered_list(5)
        assert np.array_equal(lst.values, np.ones(5, dtype=np.int64))

    def test_n_property(self):
        assert ordered_list(17).n == 17

    def test_tail_of_ordered(self):
        assert ordered_list(9).tail == 8

    def test_tail_of_reversed(self):
        assert reversed_list(9).tail == 0

    def test_tail_raises_on_multiple_self_loops(self):
        nxt = np.array([0, 1, 1], dtype=INDEX_DTYPE)
        lst = LinkedList.__new__(LinkedList)
        lst.next = nxt
        lst.head = 2
        lst.values = np.ones(3)
        with pytest.raises(ValueError, match="self-loops"):
            _ = lst.tail

    def test_copy_is_deep(self):
        lst = ordered_list(4)
        cp = lst.copy()
        cp.next[0] = 3
        cp.values[0] = 99
        assert lst.next[0] == 1
        assert lst.values[0] == 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            LinkedList(np.empty(0, dtype=INDEX_DTYPE), 0)

    def test_rejects_bad_head(self):
        with pytest.raises(ValueError, match="head"):
            LinkedList(np.array([1, 1], dtype=INDEX_DTYPE), 5)

    def test_rejects_value_length_mismatch(self):
        with pytest.raises(ValueError, match="dimension"):
            LinkedList(np.array([1, 1], dtype=INDEX_DTYPE), 0, np.ones(3))

    def test_accepts_2d_values(self):
        lst = LinkedList(np.array([1, 1], dtype=INDEX_DTYPE), 0, np.ones((2, 2)))
        assert lst.values.shape == (2, 2)

    def test_index_dtype_coercion(self):
        lst = LinkedList(np.array([1, 1], dtype=np.int32), 0)
        assert lst.next.dtype == INDEX_DTYPE


class TestFromOrder:
    def test_visits_in_given_order(self, rng):
        order = rng.permutation(50)
        lst = from_order(order)
        assert np.array_equal(list_order(lst), order)

    def test_head_is_first(self, rng):
        order = rng.permutation(10)
        assert from_order(order).head == order[0]

    def test_tail_is_last(self, rng):
        order = rng.permutation(10)
        assert from_order(order).tail == order[-1]

    def test_singleton(self):
        lst = from_order(np.array([0]))
        assert lst.head == lst.tail == 0


class TestListOrder:
    def test_ordered(self):
        assert np.array_equal(list_order(ordered_list(6)), np.arange(6))

    def test_reversed(self):
        assert np.array_equal(list_order(reversed_list(6)), np.arange(5, -1, -1))

    def test_premature_tail_raises(self):
        nxt = np.array([1, 1, 2], dtype=INDEX_DTYPE)  # node 2 disconnected self-loop
        lst = LinkedList.__new__(LinkedList)
        lst.next = nxt
        lst.head = 0
        lst.values = np.ones(3)
        with pytest.raises(ValueError, match="tail after"):
            list_order(lst)


class TestGenerators:
    @pytest.mark.parametrize("n", [1, 2, 3, 10, 1000])
    def test_random_list_valid(self, n, rng):
        validate_list_strict(random_list(n, rng))

    @pytest.mark.parametrize("n", [1, 2, 10, 333])
    def test_ordered_list_valid(self, n):
        validate_list_strict(ordered_list(n))

    @pytest.mark.parametrize("n", [1, 2, 10, 333])
    def test_reversed_list_valid(self, n):
        validate_list_strict(reversed_list(n))

    @pytest.mark.parametrize("block", [1, 3, 16, 1000])
    def test_blocked_list_valid(self, block, rng):
        validate_list_strict(blocked_list(200, block, rng))

    def test_blocked_list_locality(self, rng):
        lst = blocked_list(1000, 10, rng)
        order = list_order(lst)
        # positions within a block of 10 stay inside that block
        assert np.all(order // 10 == np.arange(1000) // 10)

    @pytest.mark.parametrize("stride", [1, 7, 64, 128])
    def test_pathological_bank_list_valid(self, stride):
        validate_list_strict(pathological_bank_list(500, stride))

    def test_pathological_stride_pattern(self):
        lst = pathological_bank_list(100, 10)
        order = list_order(lst)
        # first residue class visited with fixed stride
        assert np.array_equal(order[:10], np.arange(0, 100, 10))

    def test_random_list_deterministic_seed(self):
        a = random_list(64, 42)
        b = random_list(64, 42)
        assert np.array_equal(a.next, b.next)
        assert a.head == b.head

    def test_random_list_differs_across_seeds(self):
        a = random_list(64, 1)
        b = random_list(64, 2)
        assert not np.array_equal(a.next, b.next)

    @pytest.mark.parametrize("gen", [random_list, ordered_list, reversed_list])
    def test_rejects_nonpositive_n(self, gen):
        with pytest.raises(ValueError):
            gen(0)

    def test_blocked_rejects_bad_block(self):
        with pytest.raises(ValueError):
            blocked_list(10, 0)

    def test_pathological_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            pathological_bank_list(10, 0)


class TestValueGenerators:
    def test_unit_values(self):
        v = unit_values(7)
        assert np.array_equal(v, np.ones(7, dtype=np.int64))

    def test_random_values_range(self, rng):
        v = random_values(1000, rng, low=-5, high=5)
        assert v.min() >= -5 and v.max() < 5

    def test_random_values_dtype(self, rng):
        v = random_values(10, rng, dtype=np.float64)
        assert v.dtype == np.float64
