"""Smoke tests: the example scripts run end to end.

The slow, sweep-heavy examples (``cray_c90_reproduction.py``,
``make_figures.py``) are exercised by the benchmark suite instead.
"""

import pathlib
import subprocess
import sys

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "20000")
        assert "rank of tail = 19999" in out
        assert out.count("ok") >= 5
        assert "MISMATCH" not in out

    def test_euler_tour_demo(self):
        out = run_example("euler_tour_demo.py", "3000")
        assert "depths verified against direct propagation" in out
        assert "root subtree size         : 3000" in out

    def test_expression_evaluation(self):
        out = run_example("expression_evaluation.py", "300")
        assert "values agree" in out
        assert "verified against direct iteration" in out

    def test_load_balancing(self):
        out = run_example("load_balancing.py")
        assert "imbalance" in out
        assert "contiguous runs along the list: 8" in out

    def test_pack_schedule_explorer(self):
        out = run_example("pack_schedule_explorer.py")
        assert "pack points" in out
        assert "asymptote" in out
