"""Unit tests for the Section 6 early-reconnect variant."""

import numpy as np
import pytest

from repro.baselines.serial import serial_list_scan
from repro.core.early_reconnect import early_reconnect_list_scan
from repro.core.operators import AFFINE, MAX
from repro.core.stats import ScanStats
from repro.core.sublist import SublistConfig
from repro.lists.generate import from_order, ordered_list, random_list
from .conftest import make_affine_values

SIZES = [1, 5, 50, 500, 5000, 50_000]


class TestCorrectness:
    @pytest.mark.parametrize("n", SIZES)
    def test_matches_serial(self, n, rng):
        lst = random_list(n, rng, values=rng.integers(-9, 9, n))
        got = early_reconnect_list_scan(lst, rng=rng)
        assert np.array_equal(got, serial_list_scan(lst)), f"n={n}"

    @pytest.mark.parametrize("switch", [0, 1, 2, 16, 10**9])
    def test_every_switch_threshold(self, switch, rng):
        lst = random_list(8000, rng, values=rng.integers(-9, 9, 8000))
        got = early_reconnect_list_scan(lst, switch_count=switch, rng=rng)
        assert np.array_equal(got, serial_list_scan(lst)), f"switch={switch}"

    def test_immediate_switch_is_pure_forest(self, rng):
        """switch_count ≥ m: the whole phase runs through the forest."""
        lst = random_list(5000, rng, values=rng.integers(-9, 9, 5000))
        cfg = SublistConfig(m=64, s1=4.0)
        got = early_reconnect_list_scan(
            lst, config=cfg, switch_count=64, rng=rng
        )
        assert np.array_equal(got, serial_list_scan(lst))

    def test_ordered_layout(self, rng):
        lst = ordered_list(9000, values=rng.integers(-9, 9, 9000))
        got = early_reconnect_list_scan(lst, rng=rng)
        assert np.array_equal(got, serial_list_scan(lst))

    def test_max(self, rng):
        lst = random_list(10_000, rng, values=rng.integers(-99, 99, 10_000))
        got = early_reconnect_list_scan(lst, MAX, rng=rng)
        assert np.array_equal(got, serial_list_scan(lst, MAX))

    def test_affine(self, rng):
        n = 10_000
        lst = from_order(rng.permutation(n), make_affine_values(rng, n))
        got = early_reconnect_list_scan(lst, AFFINE, rng=rng)
        assert np.array_equal(got, serial_list_scan(lst, AFFINE))

    def test_inclusive(self, rng):
        lst = random_list(5000, rng, values=rng.integers(-9, 9, 5000))
        got = early_reconnect_list_scan(lst, inclusive=True, rng=rng)
        assert np.array_equal(got, serial_list_scan(lst, inclusive=True))

    def test_restores_input(self, rng):
        lst = random_list(20_000, rng, values=rng.integers(-9, 9, 20_000))
        bn, bv = lst.next.copy(), lst.values.copy()
        early_reconnect_list_scan(lst, rng=rng)
        assert np.array_equal(lst.next, bn)
        assert np.array_equal(lst.values, bv)

    def test_many_seeds(self, rng):
        lst = random_list(2500, rng, values=rng.integers(-9, 9, 2500))
        expect = serial_list_scan(lst)
        for seed in range(10):
            got = early_reconnect_list_scan(lst, switch_count=8, rng=seed)
            assert np.array_equal(got, expect), seed

    def test_via_dispatch(self, rng):
        from repro.core.list_scan import list_scan

        lst = random_list(6000, rng, values=rng.integers(-9, 9, 6000))
        got = list_scan(lst, algorithm="early_reconnect", rng=rng)
        assert np.array_equal(got, serial_list_scan(lst))


class TestBookkeepingBenefit:
    def test_fewer_short_vector_rounds(self, rng):
        """The switch removes the long tail of short-vector steps."""
        n = 200_000
        lst = random_list(n, rng)
        s_plain = ScanStats()
        early_reconnect_list_scan(lst, switch_count=0, rng=1, stats=s_plain)
        s_early = ScanStats()
        early_reconnect_list_scan(lst, switch_count=None, rng=1, stats=s_early)
        assert s_early.rounds < s_plain.rounds

    def test_stats_record_bookkeeping_scatters(self, rng):
        stats = ScanStats()
        early_reconnect_list_scan(
            random_list(10_000, rng), switch_count=4, rng=1, stats=stats
        )
        assert stats.scatters > 0
