"""Unit tests for the operator abstraction."""

import numpy as np
import pytest

from repro.core.operators import (
    AFFINE,
    AND,
    BUILTIN_OPERATORS,
    MAX,
    MIN,
    OR,
    PROD,
    SUM,
    XOR,
    Operator,
    get_operator,
)

SCALAR_OPS = [SUM, PROD, MIN, MAX, XOR, AND, OR]


class TestIdentity:
    @pytest.mark.parametrize("op", SCALAR_OPS, ids=lambda o: o.name)
    def test_identity_is_neutral(self, op, rng):
        x = rng.integers(-100, 100, 50)
        ident = op.identity_for(x.dtype)
        assert np.array_equal(op.combine(ident, x), x)
        assert np.array_equal(op.combine(x, ident), x)

    def test_min_identity_int(self):
        assert MIN.identity_for(np.int64) == np.iinfo(np.int64).max

    def test_min_identity_float(self):
        assert MIN.identity_for(np.float64) == np.inf

    def test_max_identity_int(self):
        assert MAX.identity_for(np.int32) == np.iinfo(np.int32).min

    def test_max_identity_float(self):
        assert MAX.identity_for(np.float32) == -np.inf

    def test_affine_identity_is_neutral(self, rng):
        f = np.stack([rng.integers(1, 5, 20), rng.integers(-5, 5, 20)], axis=1)
        ident = AFFINE.identity_for(np.int64)
        assert np.array_equal(AFFINE.combine(ident, f), f)
        assert np.array_equal(AFFINE.combine(f, ident), f)

    def test_identity_array_shape_scalar(self):
        arr = SUM.identity_array(5, np.int64)
        assert arr.shape == (5,)
        assert np.all(arr == 0)

    def test_identity_array_shape_affine(self):
        arr = AFFINE.identity_array(4, np.int64)
        assert arr.shape == (4, 2)
        assert np.all(arr == [1, 0])


class TestAssociativity:
    @pytest.mark.parametrize("op", SCALAR_OPS, ids=lambda o: o.name)
    def test_scalar_ops(self, op, rng):
        a, b, c = (rng.integers(1, 50, 30) for _ in range(3))
        left = op.combine(op.combine(a, b), c)
        right = op.combine(a, op.combine(b, c))
        assert np.array_equal(left, right)

    def test_affine(self, rng):
        f, g, h = (
            np.stack([rng.integers(1, 4, 30), rng.integers(-5, 5, 30)], axis=1)
            for _ in range(3)
        )
        left = AFFINE.combine(AFFINE.combine(f, g), h)
        right = AFFINE.combine(f, AFFINE.combine(g, h))
        assert np.array_equal(left, right)

    def test_affine_is_not_commutative(self):
        f = np.array([2, 0], dtype=np.int64)
        g = np.array([1, 3], dtype=np.int64)
        assert not np.array_equal(AFFINE.combine(f, g), AFFINE.combine(g, f))

    def test_affine_composition_semantics(self):
        # apply f(x)=2x+1 then g(x)=3x+4: g(f(x)) = 6x + 7
        f = np.array([2, 1], dtype=np.int64)
        g = np.array([3, 4], dtype=np.int64)
        assert np.array_equal(AFFINE.combine(f, g), [6, 7])


class TestAccumulate:
    @pytest.mark.parametrize("op", SCALAR_OPS, ids=lambda o: o.name)
    def test_matches_loop(self, op, rng):
        x = rng.integers(1, 20, 40)
        acc = op.accumulate(x)
        expect = x.copy()
        for i in range(1, len(x)):
            expect[i] = op.combine(expect[i - 1], x[i])
        assert np.array_equal(acc, expect)

    def test_affine_accumulate_matches_loop(self, rng):
        x = np.stack([rng.integers(1, 3, 33), rng.integers(-4, 4, 33)], axis=1)
        acc = AFFINE.accumulate(x)
        expect = x.copy()
        for i in range(1, len(x)):
            expect[i] = AFFINE.combine(expect[i - 1], x[i])
        assert np.array_equal(acc, expect)

    def test_empty(self):
        assert SUM.accumulate(np.empty(0, dtype=np.int64)).shape == (0,)

    def test_single(self):
        assert np.array_equal(SUM.accumulate(np.array([7])), [7])


class TestReduce:
    def test_sum(self, rng):
        x = rng.integers(-50, 50, 100)
        assert SUM.reduce(x) == x.sum()

    def test_max(self, rng):
        x = rng.integers(-50, 50, 100)
        assert MAX.reduce(x) == x.max()

    def test_empty_gives_identity(self):
        assert SUM.reduce(np.empty(0, dtype=np.int64)) == 0

    def test_affine_reduce(self, rng):
        x = np.stack([rng.integers(1, 3, 9), rng.integers(-4, 4, 9)], axis=1)
        assert np.array_equal(AFFINE.reduce(x), AFFINE.accumulate(x)[-1])


class TestInvertibility:
    def test_sum_remove(self, rng):
        total = rng.integers(0, 100, 20)
        part = rng.integers(0, 50, 20)
        rest = SUM.remove(total, part)
        assert np.array_equal(SUM.combine(rest, part), total)

    def test_xor_remove(self, rng):
        total = rng.integers(0, 1 << 30, 20)
        part = rng.integers(0, 1 << 30, 20)
        rest = XOR.remove(total, part)
        assert np.array_equal(XOR.combine(rest, part), total)

    def test_non_invertible_flags(self):
        for op in (PROD, MIN, MAX, AND, OR, AFFINE):
            assert not op.invertible

    def test_invertible_requires_remove(self):
        with pytest.raises(ValueError, match="remove"):
            Operator(name="bad", combine=np.add, identity=0, invertible=True)


class TestRegistry:
    def test_get_by_name(self):
        assert get_operator("sum") is SUM
        assert get_operator("affine") is AFFINE

    def test_get_passthrough(self):
        assert get_operator(MAX) is MAX

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown operator"):
            get_operator("nosuch")

    def test_all_builtins_registered(self):
        assert set(BUILTIN_OPERATORS) == {
            "sum", "prod", "min", "max", "xor", "and", "or", "affine",
        }

    def test_no_identity_for_unknown(self):
        op = Operator(name="weird", combine=np.add)
        with pytest.raises(TypeError):
            op.identity_for(np.int64)
