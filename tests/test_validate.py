"""Unit tests for the structural validators."""

import numpy as np
import pytest

from repro.lists.generate import INDEX_DTYPE, LinkedList, ordered_list, random_list
from repro.lists.validate import (
    ListStructureError,
    is_valid_list,
    validate_list,
    validate_list_strict,
)


def raw_list(nxt, head, n=None):
    """Build a LinkedList bypassing constructor checks where needed."""
    nxt = np.asarray(nxt, dtype=INDEX_DTYPE)
    lst = LinkedList.__new__(LinkedList)
    lst.next = nxt
    lst.head = head
    lst.values = np.ones(nxt.shape[0], dtype=np.int64)
    return lst


class TestValidateList:
    @pytest.mark.parametrize("n", [1, 2, 5, 100])
    def test_accepts_valid(self, n, rng):
        validate_list(random_list(n, rng))

    def test_rejects_out_of_range(self):
        with pytest.raises(ListStructureError, match="out of range"):
            validate_list(raw_list([1, 5], 0))

    def test_rejects_negative_index(self):
        with pytest.raises(ListStructureError, match="out of range"):
            validate_list(raw_list([-1, 1], 0))

    def test_rejects_no_self_loop(self):
        # pure cycle, no tail
        with pytest.raises(ListStructureError, match="self-loop"):
            validate_list(raw_list([1, 2, 0], 0))

    def test_rejects_two_self_loops(self):
        with pytest.raises(ListStructureError, match="self-loop"):
            validate_list(raw_list([0, 1], 0))

    def test_rejects_head_with_predecessor(self):
        # 0 -> 1 -> 1 but head claimed to be 1
        with pytest.raises(ListStructureError, match="head"):
            validate_list(raw_list([1, 1], 1))

    def test_rejects_converging_links(self):
        # two nodes point at the same successor
        with pytest.raises(ListStructureError, match="in-degree"):
            validate_list(raw_list([2, 2, 3, 3], 0))

    def test_rejects_wrong_dtype(self):
        lst = raw_list([1, 1], 0)
        lst.next = lst.next.astype(np.int32)
        with pytest.raises(ListStructureError, match="dtype"):
            validate_list(lst)

    def test_rejects_2d_next(self):
        lst = raw_list([1, 1], 0)
        lst.next = lst.next.reshape(1, 2)
        with pytest.raises(ListStructureError, match="one-dimensional"):
            validate_list(lst)

    def test_singleton_head_must_be_tail(self):
        validate_list(raw_list([0], 0))

    def test_multi_node_head_equals_tail_rejected(self):
        with pytest.raises(ListStructureError, match="tail of a multi-node"):
            validate_list(raw_list([1, 1], 1))


class TestValidateStrict:
    @pytest.mark.parametrize("n", [1, 2, 3, 64, 1000])
    def test_accepts_valid(self, n, rng):
        validate_list_strict(random_list(n, rng))

    def test_rejects_disjoint_cycle(self):
        # chain 0→1→1 plus cycle 2→3→2: every in-degree is right, only
        # reachability catches it
        lst = raw_list([1, 1, 3, 2], 0)
        validate_list(lst)  # local checks pass — by design
        with pytest.raises(ListStructureError, match="cycle"):
            validate_list_strict(lst)

    def test_rejects_large_disjoint_cycle(self, rng):
        base = random_list(100, rng)
        nxt = np.concatenate([base.next, [101, 102, 100]]).astype(INDEX_DTYPE)
        lst = raw_list(nxt, base.head)
        with pytest.raises(ListStructureError):
            validate_list_strict(lst)


class TestIsValid:
    def test_true_for_valid(self, rng):
        assert is_valid_list(random_list(10, rng))

    def test_false_for_invalid(self):
        assert not is_valid_list(raw_list([1, 2, 0], 0))

    def test_non_strict_mode_misses_disjoint_cycle(self):
        lst = raw_list([1, 1, 3, 2], 0)
        assert is_valid_list(lst, strict=False)
        assert not is_valid_list(lst, strict=True)

    def test_ordered_always_valid(self):
        assert is_valid_list(ordered_list(50))


class TestCorruptionGuards:
    """The traversal loops refuse to spin forever on cyclic input."""

    @staticmethod
    def _cycle_with_decoy_tail(n):
        """A big cycle plus one disjoint self-loop: local checks can
        pass, but traversal never terminates."""
        nxt = np.roll(np.arange(n - 1), -1)
        nxt = np.concatenate([nxt, [n - 1]])
        return nxt

    def test_pure_cycle_rejected_immediately(self):
        from repro.core.sublist import SublistConfig, sublist_list_scan

        n = 2000
        lst = raw_list(np.roll(np.arange(n), -1), 0)  # no self-loop at all
        with pytest.raises(ListStructureError, match="self-loop"):
            sublist_list_scan(lst, config=SublistConfig(m=16, s1=4.0), rng=0)

    def test_sublist_scan_raises_on_cycle(self):
        from repro.core.sublist import SublistConfig, sublist_list_scan

        n = 2000
        lst = raw_list(self._cycle_with_decoy_tail(n), 0)
        with pytest.raises(ListStructureError, match="cycle"):
            sublist_list_scan(lst, config=SublistConfig(m=16, s1=4.0), rng=0)

    def test_sublist_scan_restores_after_cycle_error(self):
        from repro.core.sublist import SublistConfig, sublist_list_scan

        n = 2000
        nxt = self._cycle_with_decoy_tail(n)
        lst = raw_list(nxt.copy(), 0)
        with pytest.raises(ListStructureError):
            sublist_list_scan(lst, config=SublistConfig(m=16, s1=4.0), rng=0)
        assert np.array_equal(lst.next, nxt)

    def test_serial_segment_raises_on_cycle(self):
        from repro.baselines.serial import serial_scan_segment
        from repro.core.operators import SUM

        n = 100
        nxt = np.roll(np.arange(n), -1)
        with pytest.raises(ValueError, match="corrupted"):
            serial_scan_segment(nxt, np.ones(n, dtype=np.int64), 0, SUM, 0)

    def test_forest_serial_raises_on_cycle(self):
        from repro.core.forest import serial_forest_scan
        from repro.core.operators import SUM

        n = 50
        nxt = np.roll(np.arange(n), -1).astype(INDEX_DTYPE)
        out = np.empty(n, dtype=np.int64)
        with pytest.raises(ValueError, match="terminate"):
            serial_forest_scan(
                nxt, np.ones(n, dtype=np.int64), np.array([0]), SUM, None, out
            )
