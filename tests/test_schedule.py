"""Unit tests for pack scheduling (paper Section 4.2–4.3)."""

import numpy as np
import pytest

from repro.analysis.cost_model import PAPER_C90_COSTS, phase13_time_from_schedule
from repro.analysis.distribution import expected_longest
from repro.core.schedule import (
    ScheduleIterator,
    every_step_schedule,
    integer_gaps,
    numeric_optimal_schedule,
    optimal_schedule,
    slope_condition_residuals,
    uniform_schedule,
)


class TestOptimalSchedule:
    def test_strictly_increasing(self):
        sch = optimal_schedule(10_000, 200, 14.7)
        assert np.all(np.diff(sch) > 0)

    def test_covers_longest_sublist(self):
        n, m = 10_000, 200
        sch = optimal_schedule(n, m, 14.7)
        assert sch[-1] >= expected_longest(n, m)

    def test_paper_figure12_pack_count(self):
        """Figure 12: n=10000, m=200, S1=14.7 → 11 packs (±2 for our
        slightly different terminal handling)."""
        sch = optimal_schedule(10_000, 200, 14.7)
        assert 9 <= len(sch) <= 13

    def test_satisfies_slope_condition(self):
        sch = optimal_schedule(10_000, 200, 14.7, guard="none")
        res = slope_condition_residuals(sch, 10_000, 200)
        # all interior points except the one adjacent to the clamped
        # terminal pack point satisfy Eq. 5 exactly
        assert np.max(np.abs(res[:-1])) < 1e-6

    def test_matches_numeric_optimum(self):
        """The Eq. 6 recurrence reproduces the directly minimized
        schedule to within a tight time margin."""
        n, m = 10_000, 200
        sch = optimal_schedule(n, m, 14.7, guard="none")
        num = numeric_optimal_schedule(n, m, len(sch))
        t_rec = phase13_time_from_schedule(n, m, sch)
        t_num = phase13_time_from_schedule(n, m, num)
        assert t_rec <= t_num * 1.05

    def test_beats_uniform_schedule(self):
        """With a tuned S1, the Eq. 6 schedule beats evenly spaced packs
        at every pack count (the paper's argument for non-linear
        spacing, Section 4.3)."""
        n, m = 50_000, 500
        t_opt = min(
            phase13_time_from_schedule(n, m, optimal_schedule(n, m, s1))
            for s1 in np.geomspace(5, 300, 30)
        )
        for n_packs in (4, 8, 16, 24, 32):
            t_uni = phase13_time_from_schedule(
                n, m, uniform_schedule(n, m, n_packs)
            )
            assert t_opt < t_uni

    def test_beats_every_step(self):
        n, m = 50_000, 500
        opt = optimal_schedule(n, m, 20.0)
        every = every_step_schedule(n, m)
        t_opt = phase13_time_from_schedule(n, m, opt)
        t_every = phase13_time_from_schedule(n, m, every)
        assert t_opt < t_every

    def test_gaps_grow_with_monotonic_guard(self):
        sch = optimal_schedule(10_000, 200, 14.7, guard="monotonic_gaps")
        gaps = np.diff(np.concatenate(([0.0], sch)))
        assert np.all(np.diff(gaps) >= -1e-9)

    def test_tiny_s1_collapses_without_guard(self):
        """The paper's sensitivity observation: too-small S1 makes the
        raw recurrence pack ever more frequently."""
        with pytest.raises(ValueError, match="collapsed"):
            optimal_schedule(10_000, 200, 0.05, guard="none")

    def test_tiny_s1_survives_with_guard(self):
        sch = optimal_schedule(10_000, 200, 0.5, guard="monotonic_gaps")
        assert np.all(np.diff(sch) > 0)

    def test_higher_pack_cost_delays_first_pack(self):
        """"If we make c large enough eventually we find that the
        execution time is reduced by decreasing the number of packs"
        (Section 4.3): a 4× pack cost moves the time-minimizing S1 out
        and reduces the pack count."""
        import dataclasses

        n, m = 50_000, 500
        costly = dataclasses.replace(
            PAPER_C90_COSTS,
            initial_pack_per_elem=28.0,
            final_pack_per_elem=24.0,
        )
        s1_grid = np.geomspace(5, 300, 30)

        def best(costs):
            times = [
                (
                    phase13_time_from_schedule(
                        n, m, optimal_schedule(n, m, s1, costs), costs
                    ),
                    s1,
                    len(optimal_schedule(n, m, s1, costs)),
                )
                for s1 in s1_grid
            ]
            return min(times)

        t_cheap, s1_cheap, packs_cheap = best(PAPER_C90_COSTS)
        t_costly, s1_costly, packs_costly = best(costly)
        assert s1_costly > s1_cheap
        assert packs_costly <= packs_cheap
        assert t_costly > t_cheap

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            optimal_schedule(1000, 0, 5.0)
        with pytest.raises(ValueError):
            optimal_schedule(1000, 10, -1.0)
        with pytest.raises(ValueError, match="guard"):
            optimal_schedule(1000, 10, 5.0, guard="bogus")


class TestBaselineSchedules:
    def test_uniform_spacing(self):
        sch = uniform_schedule(1000, 10, 5)
        assert np.allclose(np.diff(sch), sch[0])

    def test_uniform_rejects_zero_packs(self):
        with pytest.raises(ValueError):
            uniform_schedule(1000, 10, 0)

    def test_every_step_unit_gaps(self):
        sch = every_step_schedule(1000, 100)
        assert np.allclose(np.diff(sch), 1.0)


class TestIntegerGaps:
    def test_positive_and_sum(self):
        gaps = integer_gaps([2.4, 5.7, 11.0])
        assert np.all(gaps >= 1)
        assert gaps.sum() == 11

    def test_deduplicates_rounded_points(self):
        gaps = integer_gaps([1.1, 1.4, 3.0])
        assert gaps.sum() == 3
        assert np.all(gaps >= 1)

    def test_never_empty(self):
        assert integer_gaps([0.2]).size == 1


class TestScheduleIterator:
    def test_yields_schedule_gaps_first(self):
        it = ScheduleIterator([3.0, 7.0, 15.0])
        assert [next(it) for _ in range(3)] == [3, 4, 8]

    def test_extends_with_growth(self):
        it = ScheduleIterator([4.0], tail_growth=2.0)
        first = next(it)
        ext = [next(it) for _ in range(3)]
        assert first == 4
        assert ext == [8, 16, 32]

    def test_growth_floor_one(self):
        it = ScheduleIterator([1.0], tail_growth=1.0)
        assert [next(it) for _ in range(5)] == [1, 1, 1, 1, 1]

    def test_rejects_shrinking_growth(self):
        with pytest.raises(ValueError):
            ScheduleIterator([3.0], tail_growth=0.5)


class TestNumericOptimizer:
    def test_interior_points_satisfy_slope_condition(self):
        n, m = 10_000, 200
        num = numeric_optimal_schedule(n, m, 8)
        res = slope_condition_residuals(num, n, m)
        # all but the pinned last point should be near-stationary
        assert np.max(np.abs(res[:-1])) < 0.05

    def test_rejects_zero_packs(self):
        with pytest.raises(ValueError):
            numeric_optimal_schedule(1000, 10, 0)
