"""Latency histograms and the shared ``EngineStats.snapshot`` serializer."""

import json

import numpy as np
import pytest

from repro.engine import Engine, LatencyHistogram, ScanRequest
from repro.lists.generate import random_list, random_values


def test_empty_histogram_snapshot():
    hist = LatencyHistogram()
    snap = hist.snapshot()
    assert snap["count"] == 0
    assert snap["p50"] == 0.0 and snap["p95"] == 0.0 and snap["p99"] == 0.0
    assert snap["buckets"] == []
    json.dumps(snap)  # JSON-safe


def test_single_observation_quantiles_are_exact():
    hist = LatencyHistogram()
    hist.observe(0.004)
    assert hist.count == 1
    assert hist.min == pytest.approx(0.004)
    assert hist.max == pytest.approx(0.004)
    for q in (0.5, 0.95, 0.99):
        assert hist.quantile(q) == pytest.approx(0.004)


def test_quantiles_are_monotone_and_bounded():
    rng = np.random.default_rng(0)
    hist = LatencyHistogram()
    values = rng.uniform(0.0001, 0.5, size=5000)
    for v in values:
        hist.observe(float(v))
    p50, p95, p99 = (hist.quantile(q) for q in (0.5, 0.95, 0.99))
    assert hist.min <= p50 <= p95 <= p99 <= hist.max
    # log-bucketed interpolation: right order of magnitude, not exact
    assert p50 == pytest.approx(np.quantile(values, 0.5), rel=0.6)
    assert p95 == pytest.approx(np.quantile(values, 0.95), rel=0.6)


def test_negative_observations_clamp_to_zero():
    hist = LatencyHistogram()
    hist.observe(-1.0)
    assert hist.count == 1
    assert hist.min == 0.0
    assert hist.quantile(0.5) == 0.0


def test_merge_matches_combined_stream():
    a, b, combined = LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
    rng = np.random.default_rng(1)
    for v in rng.uniform(0.001, 0.1, size=500):
        a.observe(float(v))
        combined.observe(float(v))
    for v in rng.uniform(0.01, 1.0, size=500):
        b.observe(float(v))
        combined.observe(float(v))
    a.merge(b)
    assert a.count == combined.count
    assert a.counts == combined.counts
    assert a.quantile(0.95) == pytest.approx(combined.quantile(0.95))


def make_request(n, seed, tag=None):
    rng = np.random.default_rng(seed)
    lst = random_list(n, rng, values=random_values(n, rng))
    return ScanRequest(lst=lst, op="sum", tag=tag)


def test_engine_stats_snapshot_is_json_safe_and_complete():
    with Engine(executor="sync") as engine:
        for seed in range(4):
            engine.queue.submit(make_request(64, seed))
        responses = engine.run_batch(engine.queue.drain())
        assert all(r.ok for r in responses)
        snap = engine.stats.snapshot()
    json.dumps(snap)  # the /stats payload must serialize as-is
    assert snap["requests"] == 4
    assert snap["batches"] == 1
    assert snap["errors"] == 0
    assert snap["shed"] == 0
    assert isinstance(snap["algorithms"], dict)
    # queue_wait and execute histograms saw this batch
    assert snap["latency"]["queue_wait"]["count"] == 4
    assert snap["latency"]["execute"]["count"] == 1
    assert snap["latency"]["total"]["count"] == 0  # no serving layer here


def test_engine_stats_as_rows_derives_from_snapshot():
    with Engine(executor="sync") as engine:
        engine.queue.submit(make_request(64, 0))
        engine.run_batch(engine.queue.drain())
        rows = engine.stats.as_rows()
    labels = [row[0] for row in rows]
    assert "requests" in labels
    assert "cache hits" in labels  # underscore names render with spaces
    assert any(label.startswith("latency[queue_wait]") for label in labels)
    assert any(label.startswith("latency[execute]") for label in labels)
    # the total histogram is untouched without the serving layer
    assert not any(label.startswith("latency[total]") for label in labels)


def test_observe_response_and_shed_feed_stats():
    engine = Engine(executor="sync")
    engine.observe_response(0.010)
    engine.observe_response(0.020)
    engine.observe_shed()
    engine.observe_shed(2)
    snap = engine.stats.snapshot()
    engine.close()
    assert snap["latency"]["total"]["count"] == 2
    assert snap["shed"] == 3
