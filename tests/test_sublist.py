"""Unit tests for the paper's sublist algorithm (host backend)."""

import numpy as np
import pytest

from repro.baselines.serial import serial_list_scan, serial_list_rank
from repro.core.operators import AFFINE, MAX, MIN, PROD, XOR
from repro.core.stats import ScanStats
from repro.core.sublist import (
    SublistConfig,
    choose_splitters,
    sublist_list_rank,
    sublist_list_scan,
)
from repro.lists.generate import (
    blocked_list,
    from_order,
    ordered_list,
    random_list,
    reversed_list,
)
from .conftest import make_affine_values

SIZES = [1, 2, 3, 4, 5, 8, 16, 100, 257, 1000, 4096, 20000]


class TestCorrectness:
    @pytest.mark.parametrize("n", SIZES)
    def test_random_lists(self, n, rng):
        lst = random_list(n, rng, values=rng.integers(-9, 9, n))
        got = sublist_list_scan(lst, rng=rng)
        assert np.array_equal(got, serial_list_scan(lst)), f"n={n}"

    @pytest.mark.parametrize("layout", [ordered_list, reversed_list])
    def test_sequential_layouts(self, layout, rng):
        lst = layout(3000, values=rng.integers(-9, 9, 3000))
        assert np.array_equal(
            sublist_list_scan(lst, rng=rng), serial_list_scan(lst)
        )

    def test_blocked_layout(self, rng):
        lst = blocked_list(3000, 16, rng, values=rng.integers(-9, 9, 3000))
        assert np.array_equal(
            sublist_list_scan(lst, rng=rng), serial_list_scan(lst)
        )

    @pytest.mark.parametrize(
        "strategy", ["spaced", "random", "random_competition"]
    )
    def test_splitter_strategies(self, strategy, rng):
        lst = random_list(5000, rng, values=rng.integers(-9, 9, 5000))
        cfg = SublistConfig(splitters=strategy)
        got = sublist_list_scan(lst, config=cfg, rng=rng)
        assert np.array_equal(got, serial_list_scan(lst))

    @pytest.mark.parametrize("op", [MAX, MIN, PROD, XOR], ids=lambda o: o.name)
    def test_operators(self, op, rng):
        vals = rng.integers(1, 9, 3000)
        lst = random_list(3000, rng, values=vals)
        got = sublist_list_scan(lst, op, rng=rng)
        assert np.array_equal(got, serial_list_scan(lst, op))

    def test_affine_non_commutative(self, rng):
        n = 3000
        lst = from_order(rng.permutation(n), make_affine_values(rng, n))
        got = sublist_list_scan(lst, AFFINE, rng=rng)
        assert np.array_equal(got, serial_list_scan(lst, AFFINE))

    def test_inclusive(self, rng):
        lst = random_list(2000, rng, values=rng.integers(-9, 9, 2000))
        got = sublist_list_scan(lst, inclusive=True, rng=rng)
        assert np.array_equal(got, serial_list_scan(lst, inclusive=True))

    def test_float_values(self, rng):
        lst = random_list(2000, rng, values=rng.random(2000))
        got = sublist_list_scan(lst, rng=rng)
        assert np.allclose(got, serial_list_scan(lst))

    def test_rank(self, rng):
        lst = random_list(5000, rng)
        assert np.array_equal(sublist_list_rank(lst, rng=rng), serial_list_rank(lst))

    def test_deterministic_given_seed(self, rng):
        lst = random_list(2000, rng)
        a = sublist_list_scan(lst, rng=7)
        b = sublist_list_scan(lst, rng=7)
        assert np.array_equal(a, b)


class TestRestoration:
    """The paper's RESTORE_LIST: inputs come back bit-identical."""

    @pytest.mark.parametrize("n", [5, 100, 5000])
    def test_arrays_restored(self, n, rng):
        lst = random_list(n, rng, values=rng.integers(-9, 9, n))
        before_next = lst.next.copy()
        before_vals = lst.values.copy()
        sublist_list_scan(lst, rng=rng)
        assert np.array_equal(lst.next, before_next)
        assert np.array_equal(lst.values, before_vals)

    def test_restored_after_recursive_run(self, rng):
        lst = random_list(8000, rng)
        cfg = SublistConfig(m=2000, s1=2.0, wyllie_cutoff=512, serial_cutoff=32)
        before = lst.next.copy()
        sublist_list_scan(lst, config=cfg, rng=rng)
        assert np.array_equal(lst.next, before)

    def test_restored_on_error(self, rng):
        """If the operator explodes mid-run the list is still restored."""
        lst = random_list(1000, rng)
        calls = {"k": 0}

        def bomb(a, b):
            calls["k"] += 1
            if calls["k"] == 25:
                raise RuntimeError("boom")
            return np.add(a, b)

        from repro.core.operators import Operator

        op = Operator(name="bomb", combine=bomb, identity=0)
        before_next = lst.next.copy()
        before_vals = lst.values.copy()
        with pytest.raises(RuntimeError, match="boom"):
            sublist_list_scan(lst, op, config=SublistConfig(m=64, s1=4.0), rng=rng)
        assert np.array_equal(lst.next, before_next)
        assert np.array_equal(lst.values, before_vals)


class TestConfig:
    def test_explicit_m_s1(self, rng):
        lst = random_list(4000, rng, values=rng.integers(-9, 9, 4000))
        cfg = SublistConfig(m=100, s1=10.0)
        assert np.array_equal(
            sublist_list_scan(lst, config=cfg, rng=rng), serial_list_scan(lst)
        )

    @pytest.mark.parametrize("m", [2, 3, 64, 1999])
    def test_extreme_m(self, m, rng):
        lst = random_list(4000, rng, values=rng.integers(-9, 9, 4000))
        cfg = SublistConfig(m=m, s1=5.0)
        assert np.array_equal(
            sublist_list_scan(lst, config=cfg, rng=rng), serial_list_scan(lst)
        )

    def test_m_larger_than_n_clamped(self, rng):
        lst = random_list(600, rng)
        cfg = SublistConfig(m=10_000, s1=1.0, serial_cutoff=8)
        assert np.array_equal(
            sublist_list_scan(lst, config=cfg, rng=rng), serial_list_scan(lst)
        )

    def test_recursion_path(self, rng):
        lst = random_list(20_000, rng, values=rng.integers(-9, 9, 20_000))
        cfg = SublistConfig(m=4000, s1=2.0, wyllie_cutoff=500, serial_cutoff=16)
        got = sublist_list_scan(lst, config=cfg, rng=rng)
        assert np.array_equal(got, serial_list_scan(lst))

    def test_wyllie_phase2_path(self, rng):
        lst = random_list(20_000, rng, values=rng.integers(-9, 9, 20_000))
        cfg = SublistConfig(m=2000, s1=4.0, serial_cutoff=64, wyllie_cutoff=100_000)
        got = sublist_list_scan(lst, config=cfg, rng=rng)
        assert np.array_equal(got, serial_list_scan(lst))

    def test_short_vector_fallback(self, rng):
        lst = random_list(10_000, rng, values=rng.integers(-9, 9, 10_000))
        cfg = SublistConfig(short_vector_fallback=32)
        got = sublist_list_scan(lst, config=cfg, rng=rng)
        assert np.array_equal(got, serial_list_scan(lst))

    def test_fallback_with_affine(self, rng):
        n = 5000
        lst = from_order(rng.permutation(n), make_affine_values(rng, n))
        cfg = SublistConfig(short_vector_fallback=64)
        got = sublist_list_scan(lst, AFFINE, config=cfg, rng=rng)
        assert np.array_equal(got, serial_list_scan(lst, AFFINE))

    def test_rejects_bad_splitters(self):
        with pytest.raises(ValueError, match="splitter"):
            SublistConfig(splitters="bogus")

    def test_rejects_bad_m(self):
        with pytest.raises(ValueError, match="m"):
            SublistConfig(m=1)

    def test_rejects_bad_s1(self):
        with pytest.raises(ValueError):
            SublistConfig(s1=0.0)

    def test_rejects_inverted_cutoffs(self):
        with pytest.raises(ValueError, match="cutoff"):
            SublistConfig(serial_cutoff=1000, wyllie_cutoff=10)


class TestChooseSplitters:
    def test_spaced_count(self, rng):
        pos = choose_splitters(1000, 11, tail=999, strategy="spaced", rng=rng)
        assert pos.size == 10

    def test_spaced_excludes_tail(self, rng):
        # tail right on a spaced position
        pos = choose_splitters(1000, 11, tail=100, strategy="spaced", rng=rng)
        assert 100 not in pos

    def test_random_distinct(self, rng):
        pos = choose_splitters(100, 50, tail=7, strategy="random", rng=rng)
        assert len(np.unique(pos)) == pos.size == 49
        assert 7 not in pos

    def test_random_covers_full_range(self, rng):
        pos = choose_splitters(10, 10, tail=3, strategy="random", rng=rng)
        assert set(pos) == set(range(10)) - {3}

    def test_competition_drops_duplicates(self, rng):
        pos = choose_splitters(
            50, 40, tail=0, strategy="random_competition", rng=rng
        )
        assert len(np.unique(pos)) == pos.size
        assert 0 not in pos
        assert pos.size <= 39

    @pytest.mark.parametrize("strategy", ["spaced", "random", "random_competition"])
    def test_too_many_sublists_clamps(self, rng, strategy):
        # m > n: clamp to the n - 1 available non-tail positions instead
        # of raising / returning empty sublists
        pos = choose_splitters(5, 10, tail=0, strategy=strategy, rng=rng)
        assert 1 <= pos.size <= 4
        assert len(np.unique(pos)) == pos.size
        assert 0 not in pos
        assert np.all((pos > 0) & (pos < 5))

    @pytest.mark.parametrize("strategy", ["spaced", "random", "random_competition"])
    def test_single_node_list_no_splitters(self, rng, strategy):
        pos = choose_splitters(1, 8, tail=0, strategy=strategy, rng=rng)
        assert pos.size == 0

    @pytest.mark.parametrize("strategy", ["spaced", "random", "random_competition"])
    def test_two_node_list_single_splitter(self, rng, strategy):
        pos = choose_splitters(2, 16, tail=1, strategy=strategy, rng=rng)
        assert pos.tolist() == [0]

    def test_zero_splits(self, rng):
        pos = choose_splitters(10, 1, tail=0, strategy="spaced", rng=rng)
        assert pos.size == 0


class TestStats:
    def test_work_efficient(self, rng):
        """Total element operations stay within a small factor of n."""
        n = 100_000
        lst = random_list(n, rng)
        stats = ScanStats()
        sublist_list_scan(lst, rng=rng, stats=stats)
        assert stats.work_per_element(n) < 4.0  # paper: O(n), ≈2n + tail chase

    def test_phases_recorded(self, rng):
        stats = ScanStats()
        sublist_list_scan(random_list(10_000, rng), rng=rng, stats=stats)
        assert "phase1" in stats.phases
        assert "phase3" in stats.phases
        assert stats.packs > 0

    def test_phase3_work_at_least_n(self, rng):
        n = 50_000
        stats = ScanStats()
        sublist_list_scan(random_list(n, rng), rng=rng, stats=stats)
        assert stats.phases["phase3"] >= n
