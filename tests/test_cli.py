"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["rank"])
        assert args.n == 1 << 20
        assert args.algorithm == "sublist"
        assert args.layout == "random"

    def test_rejects_bad_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["rank", "--algorithm", "quantum"])

    def test_rejects_bad_machine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--machine", "cray3"])

    def test_batch_defaults(self):
        args = build_parser().parse_args(["batch"])
        assert args.count == 64
        assert args.min_n == 64
        assert args.workers == 1
        assert not args.no_cache

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8090
        assert args.flush_size == 64
        assert args.slo_ms == 50.0
        assert args.rate is None
        assert not args.allow_shutdown

    def test_bench_client_defaults(self):
        args = build_parser().parse_args(["bench-client"])
        assert args.clients == 4
        assert args.requests == 100
        assert args.sizes == "16,64,256"
        assert args.poison == 0
        assert not args.shutdown


class TestCommands:
    def test_rank(self, capsys):
        assert main(["rank", "-n", "5000", "--algorithm", "wyllie"]) == 0
        out = capsys.readouterr().out
        assert "ranked 5,000 nodes" in out
        assert "tail rank 4999" in out

    def test_scan(self, capsys):
        assert main(["scan", "-n", "3000", "--op", "max", "--inclusive"]) == 0
        out = capsys.readouterr().out
        assert "inclusive max-scan" in out

    def test_scan_sum_matches_length(self, capsys):
        # unit values: exclusive sum at the tail is n − 1
        assert main(["scan", "-n", "1000", "--algorithm", "serial"]) == 0
        out = capsys.readouterr().out
        assert "scan at tail = 999" in out

    def test_batch(self, capsys):
        assert main(
            ["batch", "--count", "24", "--min-n", "16", "-n", "2000"]
        ) == 0
        out = capsys.readouterr().out
        assert "batch of 24 lists" in out
        assert "throughput" in out
        assert "engine stats" in out

    def test_batch_repeat_hits_cache(self, capsys):
        assert main(
            ["batch", "--count", "8", "--min-n", "8", "-n", "200",
             "--repeat", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "cache hits" in out

    def test_batch_rejects_bad_min_n(self, capsys):
        assert main(["batch", "--min-n", "0"]) == 2

    def test_batch_stats_prints_snapshot_json(self, capsys):
        import json

        assert main(
            ["batch", "--count", "8", "--min-n", "8", "-n", "200", "--stats"]
        ) == 0
        out = capsys.readouterr().out
        # the snapshot block is the same serializer the serve layer's
        # /stats endpoint returns: find it and parse it
        start = out.index('{\n  "requests"')
        snapshot = json.loads(out[start : out.rindex("}") + 1])
        assert snapshot["requests"] == 8
        assert snapshot["latency"]["execute"]["count"] >= 1
        assert "shed" in snapshot

    def test_bench_client_rejects_bad_sizes(self, capsys):
        assert main(["bench-client", "--sizes", "16,frog"]) == 2
        assert main(["bench-client", "--sizes", "0,4"]) == 2

    def test_bench_client_reports_unreachable_server(self, capsys):
        # nothing listens on this port; must fail fast, not hang
        assert main(
            ["bench-client", "--port", "1", "--clients", "1", "--requests", "1"]
        ) == 2
        assert "cannot reach" in capsys.readouterr().err

    @pytest.mark.parametrize("algo", ["sublist", "wyllie", "serial"])
    def test_simulate(self, algo, capsys):
        assert main(["simulate", "-n", "20000", "--algorithm", algo]) == 0
        out = capsys.readouterr().out
        assert "CRAY C-90" in out
        assert "clocks/element" in out

    def test_simulate_ymp_multiproc(self, capsys):
        assert main(
            ["simulate", "-n", "20000", "--machine", "ymp", "-p", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "CRAY Y-MP" in out
        assert "4 CPU(s)" in out

    def test_simulate_layouts(self, capsys):
        for layout in ("random", "ordered", "blocked"):
            assert main(["simulate", "-n", "8000", "--layout", layout]) == 0

    def test_tune(self, capsys):
        assert main(["tune", "-n", "65536"]) == 0
        out = capsys.readouterr().out
        assert "tuned m" in out
        assert "clocks/element" in out

    def test_figures_single(self, tmp_path, capsys):
        assert main(
            ["figures", "--only", "fig12", "--out", str(tmp_path)]
        ) == 0
        assert (tmp_path / "figure12.csv").exists()
        header = (tmp_path / "figure12.csv").read_text().splitlines()[0]
        assert header == "s,g,is_pack_point"


class TestTraceCommand:
    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.n == 1 << 20
        assert args.algorithm == "sublist"
        assert not args.json and not args.engine
        assert args.jsonl is None
        assert args.max_events == 40

    def test_trace_human_tree(self, capsys):
        assert main(["trace", "-n", "30000"]) == 0
        out = capsys.readouterr().out
        for name in ("list_scan", "sublist_scan", "phase1", "phase3"):
            assert name in out
        assert "observed trajectory vs Section 4 model" in out
        assert "decay-rate ratio" in out

    def test_trace_json_payload(self, capsys):
        import json

        assert main(["trace", "-n", "30000", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n"] == 30000
        assert payload["compare_error"] is None
        (root,) = payload["trace"]["roots"]
        assert root["name"] == "list_scan"
        compare = payload["compare"]
        assert compare["trajectory"]["points"]
        assert compare["schedule"]["observed_packs"] > 0

    def test_trace_engine_mode(self, capsys):
        assert main(["trace", "-n", "20000", "--engine"]) == 0
        out = capsys.readouterr().out
        assert "run_batch" in out
        assert "shard" in out

    def test_trace_serial_has_no_comparison(self, capsys):
        assert main(["trace", "-n", "5000", "--algorithm", "serial"]) == 0
        out = capsys.readouterr().out
        assert "no model comparison" in out

    def test_trace_jsonl_export(self, tmp_path, capsys):
        import json

        path = tmp_path / "spans.jsonl"
        assert main(["trace", "-n", "20000", "--jsonl", str(path)]) == 0
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows and rows[0]["name"] == "list_scan"
        assert f"wrote {len(rows)} span(s)" in capsys.readouterr().out
