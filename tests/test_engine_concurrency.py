"""Concurrent submit + parallel flush under every executor.

The serving contract, stressed from many threads at once: concurrent
``submit`` calls interleave safely with a ``flush(parallel=True)``
batch mixing poisoned, coalesced and cached requests — and on every
backend the responses keep request order, errors stay isolated to
their own requests, and the engine's counters reconcile with the
cache's own probe accounting.

Every test in this module additionally runs under the runtime
lock-order checker (``repro.lint.lockorder``): the engine modules'
locks are swapped for instrumented wrappers that record the
acquisition-order graph and raise at the first acquisition that could
deadlock, so the thread/process drivers are race-audited on every CI
run, not just when a deadlock happens to strike.
"""

import threading

import numpy as np
import pytest

import repro.engine.cache as cache_mod
import repro.engine.engine as engine_mod
import repro.engine.workers as workers_mod
from repro.baselines.serial import serial_list_scan
from repro.core.operators import SUM
from repro.engine import Engine, ScanRequest
from repro.engine.workers import EXECUTORS
from repro.lint.lockorder import instrumented_locks
from repro.lists.generate import random_list, random_values


@pytest.fixture(autouse=True)
def lock_order_audit():
    """Race-audit every test: engine locks become checked locks.

    The fixture instruments the modules *before* the test constructs
    its Engine (so the engine's own ``threading.Lock()`` calls produce
    checked locks), lets any lock-order violation raise inside the
    test, and re-verifies the recorded graph stayed acyclic at
    teardown.
    """
    with instrumented_locks(engine_mod, workers_mod, cache_mod) as graph:
        yield graph
    assert graph.acquisitions > 0, "audit saw no lock activity"
    graph.assert_acyclic()


def healthy_list(n, seed):
    rng = np.random.default_rng(seed)
    return random_list(n, rng, values=random_values(n, rng))


def corrupt_list(n, seed):
    lst = healthy_list(n, seed)
    lst.next[n // 2] = n + 5  # out-of-range successor -> validation error
    return lst


@pytest.mark.parametrize("executor", EXECUTORS)
class TestConcurrentSubmitFlush:
    def test_mixed_poisoned_coalesced_cached(self, executor):
        with Engine(executor=executor, max_workers=4, seed=13) as engine:
            warm = healthy_list(300, seed=7)
            engine.scan(warm)  # pre-warm the cache for the "cached" mix

            per_thread = 12
            n_threads = 4
            ids = {}  # thread -> request ids in submission order
            kinds = {}  # request id -> ("good"|"bad"|"dup"|"warm", payload)

            def submitter(t):
                rng = np.random.default_rng(1000 + t)
                my_ids, my_kinds = [], {}
                shared = healthy_list(150 + t, seed=500 + t)
                for i in range(per_thread):
                    role = i % 4
                    if role == 0:  # healthy, unique
                        lst = healthy_list(int(rng.integers(2, 800)), seed=t * 100 + i)
                        rid = engine.submit(lst, SUM, tag=(t, i))
                        my_kinds[rid] = ("good", lst)
                    elif role == 1:  # poisoned
                        rid = engine.submit(
                            corrupt_list(64 + i, seed=t * 100 + i), SUM, tag=(t, i)
                        )
                        my_kinds[rid] = ("bad", None)
                    elif role == 2:  # duplicate -> coalesces in the batch
                        rid = engine.submit(shared.copy(), SUM, tag=(t, i))
                        my_kinds[rid] = ("dup", shared)
                    else:  # pre-warmed -> cache hit
                        rid = engine.submit(warm.copy(), SUM, tag=(t, i))
                        my_kinds[rid] = ("warm", warm)
                    my_ids.append(rid)
                ids[t] = my_ids
                kinds.update(my_kinds)

            threads = [
                threading.Thread(target=submitter, args=(t,))
                for t in range(n_threads)
            ]
            for th in threads:
                th.start()
            for th in threads:
                th.join()

            responses = engine.flush(parallel=True)
            assert len(responses) == n_threads * per_thread

            # response order: exactly the submission (request-id) order
            assert [r.request_id for r in responses] == sorted(
                r.request_id for r in responses
            )
            by_id = {r.request_id: r for r in responses}
            for t in range(n_threads):  # per-thread FIFO preserved
                assert ids[t] == sorted(ids[t])

            n_bad = 0
            for rid, (kind, payload) in kinds.items():
                resp = by_id[rid]
                if kind == "bad":
                    n_bad += 1
                    assert not resp.ok
                    assert resp.error.code == "bad-structure"
                    assert resp.result is None
                else:
                    assert resp.ok, resp.error
                    np.testing.assert_array_equal(
                        resp.result, serial_list_scan(payload, SUM)
                    )
                    if kind == "warm":
                        assert resp.cached
            # error isolation: exactly the poisoned requests failed
            assert sum(not r.ok for r in responses) == n_bad

            # stats totals reconcile (the +1 is the warm-up scan)
            s = engine.stats
            assert s.requests == n_threads * per_thread + 1
            assert s.errors == n_bad
            # every identical "dup" fingerprint beyond the first in the
            # batch coalesced (first occurrence per thread executes or
            # cache-hits; duplicates of the SAME fingerprint coalesce)
            assert s.coalesced > 0
            # every fingerprintable request probes the cache exactly
            # once (duplicates probe *before* coalescing), so probes
            # partition the request count
            assert s.cache_hits + s.cache_misses == s.requests
            # engine counters == the cache's own probe accounting
            cache_stats = engine.cache.stats()
            assert s.cache_hits == cache_stats["hits"]
            assert s.cache_misses == cache_stats["misses"]

    def test_flush_drains_queue(self, executor):
        with Engine(executor=executor, seed=21) as engine:
            for i in range(6):
                engine.submit(healthy_list(40 + i, seed=i), SUM)
            responses = engine.flush(parallel=True)
            assert len(responses) == 6
            assert engine.flush(parallel=True) == []
