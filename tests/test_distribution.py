"""Unit tests for the sublist-length distribution analysis (Section 4.1)."""

import numpy as np
import pytest

from repro.analysis.distribution import (
    empirical_order_stats,
    expected_live_sublists,
    expected_longest,
    expected_order_stat,
    expected_shortest,
    gamma_tail,
    live_sublists_derivative,
    prob_length_exceeds,
    sample_sublist_lengths,
)


class TestLiveSublists:
    def test_all_live_at_zero(self):
        assert expected_live_sublists(0.0, 10_000, 200) == pytest.approx(200)

    def test_decays_exponentially(self):
        n, m = 10_000, 200
        g1 = expected_live_sublists(50.0, n, m)
        g2 = expected_live_sublists(100.0, n, m)
        # halving distance multiplies by the same factor
        assert g2 / g1 == pytest.approx(g1 / m, rel=1e-9)

    def test_vectorized(self):
        s = np.array([0.0, 10.0, 20.0])
        g = expected_live_sublists(s, 1000, 50)
        assert g.shape == (3,)
        assert np.all(np.diff(g) < 0)

    def test_derivative_matches_finite_difference(self):
        n, m = 10_000, 200
        s = 40.0
        h = 1e-5
        fd = (
            expected_live_sublists(s + h, n, m)
            - expected_live_sublists(s - h, n, m)
        ) / (2 * h)
        assert live_sublists_derivative(s, n, m) == pytest.approx(fd, rel=1e-5)

    def test_derivative_negative(self):
        assert live_sublists_derivative(10.0, 1000, 50) < 0


class TestOrderStats:
    def test_shortest_formula(self):
        n, m = 10_000, 100
        assert expected_order_stat(1, n, m) == pytest.approx(
            expected_shortest(n, m), rel=1e-9
        )

    def test_longest_formula(self):
        n, m = 10_000, 100
        assert expected_order_stat(m + 1, n, m) == pytest.approx(
            expected_longest(n, m), rel=1e-9
        )

    def test_monotone_in_index(self):
        n, m = 10_000, 100
        vals = expected_order_stat(np.arange(1, m + 2), n, m)
        assert np.all(np.diff(vals) > 0)

    def test_longest_grows_like_log_m(self):
        n = 100_000
        l1 = expected_longest(n, 100)
        l2 = expected_longest(n, 200)
        # doubling m roughly halves n/m but only adds log 2 inside
        assert l2 < l1

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            expected_order_stat(0, 1000, 10)
        with pytest.raises(ValueError):
            expected_order_stat(12, 1000, 10)

    def test_total_expected_length_near_n(self):
        """Sum of all expected order statistics ≈ n (they partition the
        list)."""
        n, m = 100_000, 500
        total = expected_order_stat(np.arange(1, m + 2), n, m).sum()
        assert total == pytest.approx(n, rel=0.05)


class TestProbability:
    def test_prob_decreases(self):
        p = prob_length_exceeds(np.array([0.0, 10.0, 100.0]), 1000, 50)
        assert p[0] == 1.0
        assert np.all(np.diff(p) < 0)

    def test_mean_from_tail(self):
        """∫ P{L > x} dx = E[L] = n/m for the exponential model."""
        n, m = 10_000, 100
        xs = np.linspace(0, 20 * n / m, 20_000)
        integral = np.trapezoid(prob_length_exceeds(xs, n, m), xs)
        assert integral == pytest.approx(n / m, rel=1e-3)


class TestGammaTail:
    def test_k1_is_exponential(self):
        t = np.array([0.5, 1.0, 3.0])
        assert np.allclose(gamma_tail(1, t), np.exp(-t))

    def test_increasing_in_k(self):
        t = 2.0
        vals = [gamma_tail(k, t) for k in range(1, 6)]
        assert all(a < b for a, b in zip(vals, vals[1:]))

    def test_bounded(self):
        t = np.linspace(0, 20, 50)
        for k in (1, 3, 7):
            v = gamma_tail(k, t)
            assert np.all((0 <= v) & (v <= 1))

    def test_matches_monte_carlo(self, rng):
        """P{sum of k exponentials > t} against simulation."""
        k, t, trials = 3, 2.5, 200_000
        draws = rng.exponential(1.0, size=(trials, k)).sum(axis=1)
        mc = (draws > t).mean()
        assert gamma_tail(k, t) == pytest.approx(mc, abs=0.01)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            gamma_tail(0, 1.0)


class TestSampling:
    def test_lengths_partition_n(self, rng):
        lengths = sample_sublist_lengths(1000, 99, rng)
        assert lengths.sum() == 1000
        assert lengths.shape == (100,)
        assert np.all(lengths >= 1)

    def test_rejects_impossible_m(self, rng):
        with pytest.raises(ValueError):
            sample_sublist_lengths(10, 10, rng)
        with pytest.raises(ValueError):
            sample_sublist_lengths(10, 0, rng)

    def test_mean_length(self, rng):
        """Empirical mean sublist length ≈ n/(m+1)."""
        samples = [sample_sublist_lengths(10_000, 99, rng).mean() for _ in range(20)]
        assert np.mean(samples) == pytest.approx(100, rel=0.05)

    def test_empirical_order_stats_structure(self, rng):
        stats = empirical_order_stats(1000, 100, samples=5, rng=rng)
        assert stats["mean"].shape == (101,)
        assert np.all(stats["min"] <= stats["mean"])
        assert np.all(stats["mean"] <= stats["max"])
        assert np.all(np.diff(stats["mean"]) >= 0)

    def test_figure11_expected_matches_observed(self, rng):
        """Figure 11's claim: the analytic order statistics track the
        observed averages (n=1000, m in {100, 150, 200}, 20 samples)."""
        n = 1000
        for m in (100, 150, 200):
            obs = empirical_order_stats(n, m, samples=20, rng=rng)["mean"]
            idx = np.arange(1, m + 2)
            exp = expected_order_stat(idx, n, m)
            # compare away from the extreme tails where the estimate is
            # least accurate (the paper notes the smallest sublist needs
            # a separate estimate)
            sel = slice(m // 10, -m // 10)
            err = np.abs(obs[sel] - exp[sel]) / np.maximum(exp[sel], 1.0)
            assert np.median(err) < 0.25, f"m={m}"
